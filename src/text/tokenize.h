// Tokenizers: word tokens and character n-grams.
#ifndef LAKEFUZZ_TEXT_TOKENIZE_H_
#define LAKEFUZZ_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace lakefuzz {

/// Splits into maximal alphanumeric runs ("New-Delhi 2021" → {new, delhi,
/// 2021} after lowercasing by the caller; this function does not fold case).
std::vector<std::string> WordTokens(std::string_view s);

/// Character n-grams of length `n`. When `pad` is true the string is framed
/// with (n-1) boundary markers '\x01' so prefixes/suffixes get dedicated
/// grams (FastText-style). Strings shorter than n yield the whole string.
std::vector<std::string> CharNgrams(std::string_view s, size_t n,
                                    bool pad = true);

/// Union of n-grams for every n in [n_min, n_max].
std::vector<std::string> CharNgramRange(std::string_view s, size_t n_min,
                                        size_t n_max, bool pad = true);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TEXT_TOKENIZE_H_
