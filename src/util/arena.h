// Bump-pointer arena allocation for per-worker scratch state.
//
// The FD enumerator (and other per-task hot loops) used to allocate and
// free short-lived vectors — extension sets, flipped-column lists, dedup
// sets — once per search node, so the parallel paths spent their speedup in
// the allocator: every thread funneling through malloc/free on objects that
// live for microseconds. An ArenaAllocator replaces that churn with pointer
// bumps inside worker-private blocks: allocation is an add, deallocation is
// a Rewind to a mark taken at scope entry, and the blocks themselves are
// reused across tasks (Reset keeps capacity). Nothing here is thread-safe
// by design — one arena per worker lane, like FdScratch.
#ifndef LAKEFUZZ_UTIL_ARENA_H_
#define LAKEFUZZ_UTIL_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace lakefuzz {

class ArenaAllocator {
 public:
  /// Position in the arena; allocations made after a mark are released by
  /// Rewind(mark). Marks must unwind LIFO (scope discipline).
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  explicit ArenaAllocator(size_t min_block_bytes = 1 << 16)
      : min_block_bytes_(min_block_bytes == 0 ? 1 : min_block_bytes) {}

  ArenaAllocator(ArenaAllocator&&) = default;
  ArenaAllocator& operator=(ArenaAllocator&&) = default;
  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      size_t aligned = AlignUp(b.used, align);
      if (aligned + bytes <= b.cap) {
        b.used = aligned + bytes;
        BumpPeak();
        return b.data.get() + aligned;
      }
      // Try the already-reserved successor blocks before growing.
      while (current_ + 1 < blocks_.size()) {
        ++current_;
        Block& n = blocks_[current_];
        n.used = 0;
        if (bytes <= n.cap) {
          n.used = bytes;
          BumpPeak();
          return n.data.get();
        }
      }
    }
    return AllocSlow(bytes, align);
  }

  /// Typed array of `n` (uninitialized; T must be trivially destructible —
  /// Rewind never runs destructors).
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without destructor calls");
    return static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
  }

  Mark mark() const {
    if (blocks_.empty()) return Mark{};
    return Mark{current_, blocks_[current_].used};
  }

  /// Releases everything allocated after `m`. Blocks stay reserved.
  void Rewind(Mark m) {
    if (blocks_.empty()) return;
    for (size_t i = m.block + 1; i <= current_ && i < blocks_.size(); ++i) {
      blocks_[i].used = 0;
    }
    current_ = m.block;
    blocks_[current_].used = m.used;
  }

  /// Releases every allocation but keeps the reserved blocks for reuse.
  void Reset() { Rewind(Mark{}); }

  /// True when [p, p + old_bytes) is the most recent allocation and the
  /// current block can absorb `new_bytes` in place — the grow-in-place path
  /// ArenaVector uses so repeated push_back does not leak dead copies.
  bool TryExtend(const void* p, size_t old_bytes, size_t new_bytes) {
    if (blocks_.empty() || new_bytes < old_bytes) return false;
    Block& b = blocks_[current_];
    const char* end = static_cast<const char*>(p) + old_bytes;
    if (end != b.data.get() + b.used) return false;
    const size_t start = b.used - old_bytes;
    if (start + new_bytes > b.cap) return false;
    b.used = start + new_bytes;
    BumpPeak();
    return true;
  }

  /// Total capacity of reserved blocks (memory held from the system).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }

  /// High-water mark of live bytes across the arena's lifetime.
  size_t peak_bytes() const { return peak_bytes_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t cap = 0;
    size_t used = 0;
  };

  static size_t AlignUp(size_t n, size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void BumpPeak() {
    size_t live = 0;
    for (size_t i = 0; i <= current_ && i < blocks_.size(); ++i) {
      live += blocks_[i].used;
    }
    if (live > peak_bytes_) peak_bytes_ = live;
  }

  void* AllocSlow(size_t bytes, size_t align) {
    // Grow geometrically so a deep recursion settles into one big block
    // instead of a long chain of small ones.
    size_t cap = min_block_bytes_;
    if (!blocks_.empty()) cap = blocks_.back().cap * 2;
    if (cap < bytes + align) cap = bytes + align;
    Block b;
    b.data = std::make_unique<char[]>(cap);
    b.cap = cap;
    blocks_.push_back(std::move(b));
    current_ = blocks_.size() - 1;
    Block& nb = blocks_[current_];
    size_t aligned =
        AlignUp(reinterpret_cast<uintptr_t>(nb.data.get()), align) -
        reinterpret_cast<uintptr_t>(nb.data.get());
    nb.used = aligned + bytes;
    BumpPeak();
    return nb.data.get() + aligned;
  }

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;
  size_t peak_bytes_ = 0;
};

/// RAII mark/rewind pair for scope-shaped arena usage. A null arena makes
/// the frame a no-op, so call sites need no branching when the arena is
/// disabled.
class ArenaFrame {
 public:
  explicit ArenaFrame(ArenaAllocator* arena) : arena_(arena) {
    if (arena_ != nullptr) mark_ = arena_->mark();
  }
  ~ArenaFrame() {
    if (arena_ != nullptr) arena_->Rewind(mark_);
  }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

 private:
  ArenaAllocator* arena_;
  ArenaAllocator::Mark mark_;
};

/// Minimal growable array of trivially copyable T, backed by an arena when
/// one is given (freed wholesale by the enclosing ArenaFrame/Rewind) or by
/// the heap otherwise (freed in the destructor). The single container the
/// enumerator hot path uses, so "arena on" and "arena off" execute the
/// identical algorithm — only the allocator differs.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVector relocates with memcpy and never destroys");

 public:
  explicit ArenaVector(ArenaAllocator* arena, size_t initial_capacity = 0)
      : arena_(arena) {
    if (initial_capacity > 0) Reserve(initial_capacity);
  }
  ~ArenaVector() {
    if (arena_ == nullptr) ::operator delete(data_);
  }
  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;

  void push_back(const T& v) {
    if (size_ == cap_) Reserve(cap_ == 0 ? 8 : cap_ * 2);
    data_[size_++] = v;
  }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& back() { return data_[size_ - 1]; }

 private:
  void Reserve(size_t new_cap) {
    if (new_cap <= cap_) return;
    if (arena_ != nullptr) {
      if (cap_ != 0 &&
          arena_->TryExtend(data_, cap_ * sizeof(T), new_cap * sizeof(T))) {
        cap_ = new_cap;
        return;
      }
      T* nd = arena_->AllocArray<T>(new_cap);
      if (size_ != 0) std::memcpy(nd, data_, size_ * sizeof(T));
      data_ = nd;  // old buffer stays dead in the arena until Rewind
    } else {
      T* nd = static_cast<T*>(::operator new(new_cap * sizeof(T)));
      if (size_ != 0) std::memcpy(nd, data_, size_ * sizeof(T));
      ::operator delete(data_);
      data_ = nd;
    }
    cap_ = new_cap;
  }

  ArenaAllocator* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

/// C++17 STL allocator over an ArenaAllocator, for node-based containers
/// used as per-task scratch (e.g. the sketch builders' dedup sets).
/// deallocate is a no-op: memory returns at Rewind/Reset.
template <typename T>
class ArenaStlAllocator {
 public:
  using value_type = T;

  explicit ArenaStlAllocator(ArenaAllocator* arena) : arena_(arena) {}
  template <typename U>
  ArenaStlAllocator(const ArenaStlAllocator<U>& other)
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Alloc(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  ArenaAllocator* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaStlAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaStlAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  ArenaAllocator* arena_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_ARENA_H_
