// Request-scoped cancellation and progress plumbing.
//
// A LakeEngine request may run for minutes on a large lake; callers need to
// abort it (client disconnected, deadline passed) and to observe where it
// is. Both travel *down* the pipeline as plain option fields: CancelToken is
// polled at cooperative checkpoints (between matcher merge rounds, per FD
// component, inside the enumerator's amortized budget check), and
// ProgressFn is invoked at stage boundaries. Neither interrupts a running
// kernel; a fired token surfaces as Status::Cancelled (ErrorCode::kCancelled)
// from the nearest checkpoint, with all partial work discarded. Deadlines
// and resource budgets ride the same checkpoints via RequestContext
// (util/request_context.h), which can instead degrade to a partial result
// under BudgetPolicy::kTruncate.
#ifndef LAKEFUZZ_UTIL_CANCELLATION_H_
#define LAKEFUZZ_UTIL_CANCELLATION_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

namespace lakefuzz {

/// Shared cancellation flag for one request. Copies are cheap and observe
/// the same flag, so the caller keeps one copy to fire and the pipeline
/// carries another through its option structs.
///
/// A default-constructed token is *inert*: it can never be cancelled and
/// costs nothing to copy — the natural "no cancellation requested" value.
/// Cancellable tokens come from CancelToken::Create().
class CancelToken {
 public:
  CancelToken() = default;

  /// A live token whose Cancel() is observed by all copies.
  static CancelToken Create() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation. Thread-safe; no-op on an inert token.
  void Cancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
  }

  /// True once Cancel() was called on any copy. Thread-safe.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// True for tokens from Create() (inert default-constructed ones return
  /// false).
  bool can_cancel() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Pipeline stages that emit progress events and honor cancellation.
enum class Stage {
  kDiscover,     ///< unionable-candidate search over the discovery index
  kAlign,        ///< column alignment (holistic or by-name)
  kMatch,        ///< fuzzy value matching, one unit per universal column
  kRewrite,      ///< rewriting matched values to representatives
  kFdBuild,      ///< outer-union construction (FdProblem::Build)
  kFdEnumerate,  ///< join-graph index + component enumeration
  kFdSubsume,    ///< subsumption elimination
  kEmit,         ///< result materialization / sink batches
};

inline std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kDiscover:
      return "discover";
    case Stage::kAlign:
      return "align";
    case Stage::kMatch:
      return "match";
    case Stage::kRewrite:
      return "rewrite";
    case Stage::kFdBuild:
      return "fd_build";
    case Stage::kFdEnumerate:
      return "fd_enumerate";
    case Stage::kFdSubsume:
      return "fd_subsume";
    case Stage::kEmit:
      return "emit";
  }
  return "unknown";
}

/// One progress observation. Stages with internal units report
/// done ∈ [0, total]; stages without report (0, 1) on entry and (1, 1) on
/// completion.
struct ProgressEvent {
  Stage stage = Stage::kAlign;
  size_t done = 0;
  size_t total = 0;
};

/// Invoked synchronously on the thread driving the request — never
/// concurrently for one request — so an implementation may fire the
/// request's CancelToken or touch request-local state without locking.
/// Keep it cheap; it sits on stage boundaries of the hot path.
using ProgressFn = std::function<void(const ProgressEvent&)>;

/// Emits an event when `progress` is set — the one-liner used at every
/// reporting site.
inline void ReportProgress(const ProgressFn& progress, Stage stage,
                           size_t done, size_t total) {
  if (progress) progress(ProgressEvent{stage, done, total});
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_CANCELLATION_H_
