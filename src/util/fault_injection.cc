#include "util/fault_injection.h"

namespace lakefuzz {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::ArmAll(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  arm_all_ = true;
  probability_ = probability;
  rng_.seed(seed);
  countdowns_.clear();
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::ArmPoint(std::string_view point, uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  arm_all_ = false;
  countdowns_[std::string(point)] = countdown;
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  arm_all_ = false;
  countdowns_.clear();
  enabled_.store(false, std::memory_order_release);
}

Status FaultInjector::Poke(std::string_view point) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (arm_all_) {
    std::bernoulli_distribution fire(probability_);
    if (fire(rng_)) {
      return Status::Internal("injected fault at " + std::string(point));
    }
    return Status::OK();
  }
  auto it = countdowns_.find(std::string(point));
  if (it == countdowns_.end()) return Status::OK();
  if (it->second == 0) {
    countdowns_.erase(it);
    if (countdowns_.empty()) {
      enabled_.store(false, std::memory_order_release);
    }
    return Status::Internal("injected fault at " + std::string(point));
  }
  --it->second;
  return Status::OK();
}

}  // namespace lakefuzz
