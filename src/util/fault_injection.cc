#include "util/fault_injection.h"

#include <cstdlib>

namespace lakefuzz {
namespace {

/// Parses "<prefix>:<countdown>" from LAKEFUZZ_CRASH_POINT. A malformed
/// value is ignored (the harness would then see a clean child exit and
/// fail loudly) rather than aborting an innocent process.
void ArmCrashFromEnv(FaultInjector* injector) {
  const char* spec = std::getenv("LAKEFUZZ_CRASH_POINT");
  if (spec == nullptr || *spec == '\0') return;
  const std::string_view s(spec);
  const size_t colon = s.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return;
  uint64_t countdown = 0;
  for (size_t i = colon + 1; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return;
    countdown = countdown * 10 + static_cast<uint64_t>(s[i] - '0');
  }
  injector->ArmCrash(s.substr(0, colon), countdown);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    ArmCrashFromEnv(injector);
    return injector;
  }();
  return *instance;
}

void FaultInjector::ArmAll(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  arm_all_ = true;
  probability_ = probability;
  rng_.seed(seed);
  countdowns_.clear();
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::ArmPoint(std::string_view point, uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  arm_all_ = false;
  countdowns_[std::string(point)] = countdown;
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::ArmCrash(std::string_view point_prefix,
                             uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_armed_ = true;
  crash_prefix_ = std::string(point_prefix);
  crash_countdown_ = countdown;
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  arm_all_ = false;
  countdowns_.clear();
  enabled_.store(crash_armed_, std::memory_order_release);
}

Status FaultInjector::Poke(std::string_view point) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (crash_armed_ && point.size() >= crash_prefix_.size() &&
      point.substr(0, crash_prefix_.size()) == crash_prefix_) {
    if (crash_countdown_ == 0) {
      // Die without unwinding: no destructors, no stream flushes — the same
      // torn on-disk state a power cut at this instruction would leave.
      std::_Exit(kCrashExitCode);
    }
    --crash_countdown_;
  }
  if (arm_all_) {
    std::bernoulli_distribution fire(probability_);
    if (fire(rng_)) {
      return Status::Internal("injected fault at " + std::string(point));
    }
    return Status::OK();
  }
  auto it = countdowns_.find(std::string(point));
  if (it == countdowns_.end()) return Status::OK();
  if (it->second == 0) {
    countdowns_.erase(it);
    if (countdowns_.empty() && !crash_armed_) {
      enabled_.store(false, std::memory_order_release);
    }
    return Status::Internal("injected fault at " + std::string(point));
  }
  --it->second;
  return Status::OK();
}

}  // namespace lakefuzz
