// Fault injection for chaos testing the request pipeline.
//
// A FaultInjector is a process-wide registry of named injection points
// compiled into the library at seams where real deployments fail:
// allocation-heavy stages, task spawn, CSV IO, sink writes. Tests arm it —
// deterministically (ArmPoint: fire once after N pokes) or stochastically
// (ArmAll: seeded Bernoulli per poke) — and every armed poke surfaces
// Status::Internal("injected fault at <point>") from that seam, exactly as
// a real failure would.
//
// The call sites are macro-gated: LAKEFUZZ_FAULT_POINT(name) expands to a
// poke-and-propagate only when the build defines LAKEFUZZ_FAULT_POINTS
// (CMake option of the same name, OFF by default), and to nothing in
// production builds — zero cost when disabled, not merely cheap.
#ifndef LAKEFUZZ_UTIL_FAULT_INJECTION_H_
#define LAKEFUZZ_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace lakefuzz {

class FaultInjector {
 public:
  /// The process-wide instance all injection points poke.
  static FaultInjector& Instance();

  /// Arms every point stochastically: each poke fires independently with
  /// `probability`, drawn from a generator seeded with `seed` (so a chaos
  /// run is reproducible from its seed alone).
  void ArmAll(uint64_t seed, double probability);

  /// Arms one named point deterministically: it fires exactly once, on the
  /// (countdown+1)-th poke. Leaves other points disarmed (clears ArmAll).
  void ArmPoint(std::string_view point, uint64_t countdown);

  /// Disarms everything; pokes become a single relaxed atomic load again.
  void Disarm();

  /// Called by LAKEFUZZ_FAULT_POINT at each seam. Returns OK when the point
  /// does not fire; when armed and firing, returns
  /// Status::Internal("injected fault at <point>").
  Status Poke(std::string_view point);

  /// Fast-path gate: false ⇒ Poke would trivially return OK.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  // ArmAll state.
  bool arm_all_ = false;
  double probability_ = 0.0;
  std::mt19937_64 rng_;
  // ArmPoint state: remaining pokes before the point fires; fired points
  // are erased (one-shot).
  std::unordered_map<std::string, uint64_t> countdowns_;
};

}  // namespace lakefuzz

#ifdef LAKEFUZZ_FAULT_POINTS
/// Poke the named point and propagate the injected fault. Usable in any
/// function returning Status or Result<T> (Result converts from Status).
#define LAKEFUZZ_FAULT_POINT(name)                                     \
  do {                                                                 \
    if (::lakefuzz::FaultInjector::Instance().enabled()) {             \
      ::lakefuzz::Status _fault =                                      \
          ::lakefuzz::FaultInjector::Instance().Poke(name);            \
      if (!_fault.ok()) return _fault;                                 \
    }                                                                  \
  } while (0)
#else
#define LAKEFUZZ_FAULT_POINT(name) \
  do {                             \
  } while (0)
#endif

#endif  // LAKEFUZZ_UTIL_FAULT_INJECTION_H_
