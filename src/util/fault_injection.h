// Fault injection for chaos testing the request pipeline.
//
// A FaultInjector is a process-wide registry of named injection points
// compiled into the library at seams where real deployments fail:
// allocation-heavy stages, task spawn, CSV IO, sink writes, catalog
// write/fsync/rename. Tests arm it — deterministically (ArmPoint: fire once
// after N pokes) or stochastically (ArmAll: seeded Bernoulli per poke) —
// and every armed poke surfaces Status::Internal("injected fault at
// <point>") from that seam, exactly as a real failure would.
//
// A second, harsher mode arms a *crash*: ArmCrash (or the
// LAKEFUZZ_CRASH_POINT environment variable, parsed once at first use with
// the form "<prefix>:<countdown>") kills the process with
// std::_Exit(kCrashExitCode) on the (countdown+1)-th poke of any point whose
// name starts with the prefix — no unwinding, no buffer flushing, exactly
// like SIGKILL landing between two IO operations. The catalog crash-recovery
// harness (tests/crash_harness.cc) sweeps the countdown to die at every
// armed write/fsync/rename site in sequence.
//
// The call sites are macro-gated: LAKEFUZZ_FAULT_POINT(name) expands to a
// poke-and-propagate only when the build defines LAKEFUZZ_FAULT_POINTS
// (CMake option of the same name, OFF by default), and to nothing in
// production builds — zero cost when disabled, not merely cheap.
#ifndef LAKEFUZZ_UTIL_FAULT_INJECTION_H_
#define LAKEFUZZ_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace lakefuzz {

class FaultInjector {
 public:
  /// Exit code of an armed crash — 128+9, the shell's code for SIGKILL, so
  /// a harness parent cannot confuse a deliberate kill with a clean exit or
  /// an assertion failure.
  static constexpr int kCrashExitCode = 137;

  /// The process-wide instance all injection points poke. First use parses
  /// the LAKEFUZZ_CRASH_POINT environment variable ("<prefix>:<countdown>")
  /// into an armed crash, so a freshly exec'd child needs no test code.
  static FaultInjector& Instance();

  /// Arms every point stochastically: each poke fires independently with
  /// `probability`, drawn from a generator seeded with `seed` (so a chaos
  /// run is reproducible from its seed alone).
  void ArmAll(uint64_t seed, double probability);

  /// Arms one named point deterministically: it fires exactly once, on the
  /// (countdown+1)-th poke. Leaves other points disarmed (clears ArmAll).
  void ArmPoint(std::string_view point, uint64_t countdown);

  /// Arms the process kill: the (countdown+1)-th poke of any point whose
  /// name starts with `point_prefix` calls std::_Exit(kCrashExitCode).
  void ArmCrash(std::string_view point_prefix, uint64_t countdown);

  /// Disarms fault injection (ArmAll / ArmPoint); pokes become a single
  /// relaxed atomic load again. An armed crash is NOT cleared — it models
  /// the environment, not a test fixture, and stays live for process life.
  void Disarm();

  /// Called by LAKEFUZZ_FAULT_POINT at each seam. Returns OK when the point
  /// does not fire; when armed and firing, returns
  /// Status::Internal("injected fault at <point>"). Does not return at all
  /// when an armed crash reaches zero.
  Status Poke(std::string_view point);

  /// Fast-path gate: false ⇒ Poke would trivially return OK.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  // ArmAll state.
  bool arm_all_ = false;
  double probability_ = 0.0;
  std::mt19937_64 rng_;
  // ArmPoint state: remaining pokes before the point fires; fired points
  // are erased (one-shot).
  std::unordered_map<std::string, uint64_t> countdowns_;
  // ArmCrash state.
  bool crash_armed_ = false;
  std::string crash_prefix_;
  uint64_t crash_countdown_ = 0;
};

}  // namespace lakefuzz

#ifdef LAKEFUZZ_FAULT_POINTS
/// Poke the named point and propagate the injected fault. Usable in any
/// function returning Status or Result<T> (Result converts from Status).
#define LAKEFUZZ_FAULT_POINT(name)                                     \
  do {                                                                 \
    if (::lakefuzz::FaultInjector::Instance().enabled()) {             \
      ::lakefuzz::Status _fault =                                      \
          ::lakefuzz::FaultInjector::Instance().Poke(name);            \
      if (!_fault.ok()) return _fault;                                 \
    }                                                                  \
  } while (0)
#else
#define LAKEFUZZ_FAULT_POINT(name) \
  do {                             \
  } while (0)
#endif

#endif  // LAKEFUZZ_UTIL_FAULT_INJECTION_H_
