#include "util/flags.h"

#include <cstdlib>

#include "util/str.h"

namespace lakefuzz {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; else a switch.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second.empty()) return true;  // bare --switch
  std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace lakefuzz
