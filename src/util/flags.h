// Tiny command-line flag parser for examples and benchmark harnesses.
//
// Accepts --key=value and --key value and bare --switch forms. Unknown
// arguments are collected as positionals.
#ifndef LAKEFUZZ_UTIL_FLAGS_H_
#define LAKEFUZZ_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace lakefuzz {

/// Parsed command line.
class Flags {
 public:
  /// Parses argv (argv[0] is skipped).
  static Flags Parse(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Value of --name, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_FLAGS_H_
