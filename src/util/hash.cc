#include "util/hash.h"

// Header-only; this translation unit exists so the module has a library
// archive even if all hashing stays inline.
namespace lakefuzz {}
