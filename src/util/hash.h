// Deterministic, seedable hashing primitives.
//
// All hashing in lakefuzz (feature hashing for embeddings, posting-list keys,
// dedup signatures) goes through these functions so results are reproducible
// across platforms and runs — std::hash is implementation-defined and is
// deliberately not used.
#ifndef LAKEFUZZ_UTIL_HASH_H_
#define LAKEFUZZ_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace lakefuzz {

/// 64-bit FNV-1a over raw bytes.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// 64-bit FNV-1a over a string.
inline uint64_t Fnv1a64(std::string_view s,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// Strong 64-bit finalizer (splitmix64). Good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two hashes (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (Mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Hash of a string with an integer salt; used for feature hashing where
/// several independent hash functions are derived from one base hash.
inline uint64_t SaltedHash(std::string_view s, uint64_t salt) {
  return Mix64(Fnv1a64(s) ^ Mix64(salt));
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_HASH_H_
