#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace lakefuzz {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelPrefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info] ";
    case LogLevel::kWarning:
      return "[warn] ";
    case LogLevel::kError:
      return "[error] ";
  }
  return "[?] ";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "%s%s\n", LevelPrefix(level), msg.c_str());
}

void LogDebug(const std::string& msg) { Log(LogLevel::kDebug, msg); }
void LogInfo(const std::string& msg) { Log(LogLevel::kInfo, msg); }
void LogWarning(const std::string& msg) { Log(LogLevel::kWarning, msg); }
void LogError(const std::string& msg) { Log(LogLevel::kError, msg); }

}  // namespace lakefuzz
