// Leveled logging to stderr. Benchmarks print results to stdout; diagnostics
// go through these helpers so they can be silenced uniformly.
#ifndef LAKEFUZZ_UTIL_LOGGING_H_
#define LAKEFUZZ_UTIL_LOGGING_H_

#include <string>

namespace lakefuzz {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` at `level` with a level prefix, if enabled.
void Log(LogLevel level, const std::string& msg);

void LogDebug(const std::string& msg);
void LogInfo(const std::string& msg);
void LogWarning(const std::string& msg);
void LogError(const std::string& msg);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_LOGGING_H_
