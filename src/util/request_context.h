// Request lifecycle context: cancellation + deadline + resource budget.
//
// A RequestContext travels *down* the pipeline as one option field,
// generalizing the bare CancelToken the engine used to carry. Every
// cooperative checkpoint (matcher merge rounds, per-FD-component, the
// enumerator's amortized node check, discovery scoring, sink batches) calls
// CheckStop(), which surfaces ErrorCode::kCancelled for a fired token and
// ErrorCode::kDeadlineExceeded for an expired Deadline — distinct codes, so
// a server can tell "client went away" from "request was too slow".
//
// A ResourceBudget bounds the request's resource appetite (FD search nodes,
// result tuples, scratch arena bytes). What happens at exhaustion is the
// BudgetPolicy's call: kFail surfaces kResourceExhausted / kDeadlineExceeded
// as hard errors; kTruncate stops cleanly at the checkpoint and returns a
// *partial* result with a populated Truncation report instead of throwing
// completed work away.
#ifndef LAKEFUZZ_UTIL_REQUEST_CONTEXT_H_
#define LAKEFUZZ_UTIL_REQUEST_CONTEXT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/cancellation.h"
#include "util/status.h"

namespace lakefuzz {

class Tracer;  // obs/trace.h; carried here as an opaque handle

/// A wall-clock bound on one request, measured on the steady clock (immune
/// to system-time jumps). A default-constructed Deadline is *unset*:
/// expired() is false forever and costs one branch to poll — the natural
/// "no deadline requested" value.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline `d` from now (e.g. Deadline::After(std::chrono::
  /// milliseconds(50))).
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> d) {
    Deadline deadline;
    deadline.set_ = true;
    deadline.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(d);
    return deadline;
  }

  /// Convenience: a deadline `ms` milliseconds from now.
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  bool set() const { return set_; }

  /// True once the deadline passed. False-fast for unset deadlines (no
  /// clock read).
  bool expired() const { return set_ && Clock::now() >= at_; }

 private:
  bool set_ = false;
  Clock::time_point at_{};
};

/// What to do when a deadline or resource budget runs out mid-request.
enum class BudgetPolicy {
  /// Surface kDeadlineExceeded / kResourceExhausted as a hard error; all
  /// partial work is discarded. The default — matches CancelToken semantics.
  kFail,
  /// Stop cleanly at the checkpoint and return the partial result built so
  /// far, with a populated Truncation report. Cancellation still fails hard
  /// (a cancelled caller does not want a partial answer).
  kTruncate,
};

/// Per-request resource ceilings. Zero means unlimited (the default), so a
/// default-constructed budget changes nothing.
struct ResourceBudget {
  /// Max FD search nodes across the whole request (tightens
  /// FdOptions::max_search_nodes; exhaustion is kResourceExhausted, not the
  /// legacy kFailedPrecondition).
  uint64_t max_fd_nodes = 0;
  /// Max result tuples surviving subsumption; under kTruncate the result is
  /// cut to the first `max_result_tuples` in deterministic output order.
  uint64_t max_result_tuples = 0;
  /// Max bytes of FD scratch-arena reservation (accounted via
  /// FdStats::arena_bytes_reserved between components).
  uint64_t max_scratch_bytes = 0;

  bool any_set() const {
    return max_fd_nodes > 0 || max_result_tuples > 0 || max_scratch_bytes > 0;
  }
};

/// Degradation report for a request that stopped early under
/// BudgetPolicy::kTruncate: which stage was cut, why, and how much of the
/// work completed. truncated == false means the result is complete.
struct Truncation {
  bool truncated = false;
  Stage stage = Stage::kFdEnumerate;  ///< stage that was cut short
  std::string reason;                 ///< e.g. "deadline exceeded"
  size_t components_completed = 0;    ///< FD components fully enumerated
  size_t components_skipped = 0;      ///< FD components dropped
  size_t tuples_emitted = 0;          ///< result tuples kept/streamed

  /// Folds another stage's truncation into this one. The first truncation
  /// wins the stage/reason slot; counters accumulate.
  void Merge(const Truncation& other) {
    if (!other.truncated) return;
    if (!truncated) {
      *this = other;
      return;
    }
    components_completed += other.components_completed;
    components_skipped += other.components_skipped;
    tuples_emitted += other.tuples_emitted;
  }
};

/// Everything a pipeline stage needs to decide "should I keep going, and
/// what do I do if not": cancel token, deadline, budget, policy. Cheap to
/// copy (the token is a shared_ptr, the rest PODs); carried by value in
/// option structs exactly like CancelToken was.
class RequestContext {
 public:
  RequestContext() = default;

  /// Implicit from a bare CancelToken: pre-RequestContext call sites that
  /// passed a token keep compiling, with no deadline and no budget.
  RequestContext(CancelToken cancel)  // NOLINT(runtime/explicit)
      : cancel(std::move(cancel)) {}

  CancelToken cancel;
  Deadline deadline;
  ResourceBudget budget;
  BudgetPolicy policy = BudgetPolicy::kFail;
  /// Request tracing (obs/trace.h): stages parented under `trace_parent`
  /// open child spans on `tracer`. Null = tracing off (the default; costs
  /// one pointer test per stage seam). Observation-only by contract —
  /// pipeline code must never branch on tracer state, so traced and
  /// untraced runs produce byte-identical results. Not owned; must outlive
  /// the request.
  Tracer* tracer = nullptr;
  uint64_t trace_parent = 0;

  /// The checkpoint poll: kCancelled for a fired token, kDeadlineExceeded
  /// for an expired deadline, OK otherwise. `what` names the stage for the
  /// error message ("full disjunction", "value matching", ...).
  Status CheckStop(const char* what) const {
    if (cancel.cancelled()) {
      return Status::Cancelled(std::string(what) + " cancelled");
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " deadline exceeded");
    }
    return Status::OK();
  }

  /// True when a stop with this code should degrade to a partial result
  /// instead of failing the request. Cancellation never truncates.
  bool ShouldTruncate(ErrorCode code) const {
    return policy == BudgetPolicy::kTruncate &&
           (code == ErrorCode::kDeadlineExceeded ||
            code == ErrorCode::kResourceExhausted);
  }

  /// A copy with the deadline and budget stripped: used for cleanup work
  /// (e.g. subsuming an already-truncated partial result) that must still
  /// honor cancellation but must not be aborted by the already-expired
  /// deadline it is cleaning up after.
  RequestContext CancelOnly() const {
    RequestContext ctx;
    ctx.cancel = cancel;
    // Tracing survives degradation: cleanup work still shows up in the
    // trace tree (it changes no behavior, only visibility).
    ctx.tracer = tracer;
    ctx.trace_parent = trace_parent;
    return ctx;
  }

  /// A copy re-parented under `span_id`: how a stage hands its own span to
  /// the sub-stages it invokes.
  RequestContext WithSpan(uint64_t span_id) const {
    RequestContext ctx = *this;
    ctx.trace_parent = span_id;
    return ctx;
  }
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_REQUEST_CONTEXT_H_
