// Result<T>: value-or-Status, the library's exception-free return channel.
#ifndef LAKEFUZZ_UTIL_RESULT_H_
#define LAKEFUZZ_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace lakefuzz {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
///
/// Accessing `value()` on an errored Result is a programming error and
/// asserts in debug builds. Typical use:
///
///   Result<Table> r = CsvReader::ReadFile(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The error taxonomy entry: ErrorCode::kOk when a value is held,
  /// otherwise the failure's code. Lets callers branch on the typed code
  /// (`r.code() == ErrorCode::kCancelled`) without going through status().
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : status_.code();
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or, when errored, the supplied fallback.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace lakefuzz

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` must be declarable via `auto`.
#define LAKEFUZZ_ASSIGN_OR_RETURN(lhs, expr)          \
  LAKEFUZZ_ASSIGN_OR_RETURN_IMPL_(                    \
      LAKEFUZZ_CONCAT_(_result_tmp_, __LINE__), lhs, expr)
#define LAKEFUZZ_CONCAT_INNER_(a, b) a##b
#define LAKEFUZZ_CONCAT_(a, b) LAKEFUZZ_CONCAT_INNER_(a, b)
#define LAKEFUZZ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // LAKEFUZZ_UTIL_RESULT_H_
