#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace lakefuzz {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros; splitmix cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (0 - n) % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformReal() {
  // 53 high bits → uniform in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * UniformReal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformReal();
  double u2 = UniformReal();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return Uniform(n);
  // Inverse-CDF by linear scan over 1/(k+1)^s weights. Adequate for the
  // generator sizes used in benchmarks (n up to a few thousand ranks).
  double norm = 0.0;
  for (uint64_t k = 0; k < n; ++k) norm += 1.0 / std::pow(double(k + 1), s);
  double u = UniformReal() * norm;
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(double(k + 1), s);
    if (u <= acc) return k;
  }
  return n - 1;
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  assert(total > 0.0);
  double u = UniformReal() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    acc += weights[i];
    if (u <= acc) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) return i - 1;
  }
  return 0;
}

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  if (k > n) k = n;
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::string Rng::AlphaString(size_t len) {
  std::string out(len, 'a');
  for (auto& c : out) c = static_cast<char>('a' + Uniform(26));
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xf0f0f0f0f0f0f0f0ULL); }

}  // namespace lakefuzz
