// Seedable pseudo-random number generation for data generators and tests.
//
// Uses xoshiro256** seeded via splitmix64. We own the implementation (rather
// than <random> engines) so that generated benchmark data is bit-identical
// across standard library versions and platforms.
#ifndef LAKEFUZZ_UTIL_RNG_H_
#define LAKEFUZZ_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lakefuzz {

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x5eed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Zipf-distributed integer in [0, n) with exponent s (s=0 → uniform).
  /// Uses inverse-CDF over precomputable weights; O(n) per call is avoided by
  /// rejection-free cumulative search on demand — intended for modest n.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// its weight. Requires at least one positive weight.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Selects k distinct indices from [0, n) (k clamped to n), in random order.
  std::vector<size_t> Sample(size_t n, size_t k);

  /// Random lowercase ASCII string of the given length.
  std::string AlphaString(size_t len);

  /// Forks an independent stream (useful to decorrelate sub-generators).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_RNG_H_
