#include "util/rss.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace lakefuzz {

size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<size_t>(usage.ru_maxrss);
#else
  // Linux (and the BSDs) report kibibytes.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

size_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t rss = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      unsigned long long kib = 0;
      if (std::sscanf(line + 6, "%llu", &kib) == 1) {
        rss = static_cast<size_t>(kib) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return rss;
#else
  return 0;
#endif
}

}  // namespace lakefuzz
