// Process resident-set-size probes for memory observability.
//
// Two complementary readings: the kernel's high-water mark (getrusage
// ru_maxrss — monotonic over the process lifetime, the honest "how much did
// this run ever cost" number FdStats reports) and the instantaneous RSS
// (/proc/self/status VmRSS — resettable by comparison, so benchmarks can
// attribute a delta to one phase even after an earlier phase peaked higher).
#ifndef LAKEFUZZ_UTIL_RSS_H_
#define LAKEFUZZ_UTIL_RSS_H_

#include <cstddef>

namespace lakefuzz {

/// Peak resident set size of this process in bytes (monotonic high-water
/// mark). 0 when the platform offers no reading.
size_t PeakRssBytes();

/// Current resident set size in bytes. 0 when unavailable (non-Linux).
size_t CurrentRssBytes();

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_RSS_H_
