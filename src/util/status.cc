#include "util/status.h"

namespace lakefuzz {

std::string_view ErrorCodeToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kFailedPrecondition:
      return "FailedPrecondition";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kUnimplemented:
      return "Unimplemented";
    case ErrorCode::kIoError:
      return "IoError";
    case ErrorCode::kCancelled:
      return "Cancelled";
    case ErrorCode::kAlreadyExists:
      return "AlreadyExists";
    case ErrorCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case ErrorCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lakefuzz
