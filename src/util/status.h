// Status / error-code plumbing for the lakefuzz library.
//
// Library code does not throw exceptions (RocksDB/Arrow idiom): fallible
// operations return a Status, or a Result<T> when they also produce a value.
#ifndef LAKEFUZZ_UTIL_STATUS_H_
#define LAKEFUZZ_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lakefuzz {

/// The library's typed error taxonomy. Every fallible operation reports one
/// of these through Status / Result<T>, so callers branch on codes instead
/// of parsing message strings (e.g. a server maps kCancelled to "request
/// aborted" and kAlreadyExists to HTTP 409 without string matching).
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  /// A cooperative CancelToken fired; the operation stopped at a
  /// checkpoint. The partial work is discarded and the request can be
  /// retried.
  kCancelled,
  /// A unique-name constraint was violated (e.g. duplicate table name in a
  /// LakeEngine registry).
  kAlreadyExists,
  /// The request's Deadline passed; the operation stopped at a cooperative
  /// checkpoint. Retryable with a larger deadline (or recoverable as a
  /// partial result under BudgetPolicy::kTruncate).
  kDeadlineExceeded,
  /// A resource limit was hit: a ResourceBudget ran out mid-request, or the
  /// engine's admission control rejected the request under overload.
  /// Retryable later or with a larger budget.
  kResourceExhausted,
};

/// Historical name of the taxonomy, kept for existing call sites.
using StatusCode = ErrorCode;

/// Human-readable name of an ErrorCode (e.g. "InvalidArgument").
std::string_view ErrorCodeToString(ErrorCode code);
inline std::string_view StatusCodeToString(ErrorCode code) {
  return ErrorCodeToString(code);
}

/// Result of a fallible operation: a code plus an optional message.
///
/// The OK status carries no message and is cheap to copy. Use the factory
/// functions (`Status::OK()`, `Status::InvalidArgument(...)`, ...) rather than
/// constructing codes by hand.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace lakefuzz

/// Propagates a non-OK status to the caller, RocksDB-style.
#define LAKEFUZZ_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::lakefuzz::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // LAKEFUZZ_UTIL_STATUS_H_
