// Wall-clock timing helpers for benchmarks and progress reporting.
#ifndef LAKEFUZZ_UTIL_STOPWATCH_H_
#define LAKEFUZZ_UTIL_STOPWATCH_H_

#include <chrono>

namespace lakefuzz {

/// Monotonic stopwatch. Starts on construction; `Restart()` to reuse.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_STOPWATCH_H_
