#include "util/str.h"

#include <cctype>
#include <cstdio>

namespace lakefuzz {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string WithThousandsSep(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (size_t i = digits.size(); i > 0; --i) {
    out.push_back(digits[i - 1]);
    if (++count % 3 == 0 && i > 1) out.push_back(',');
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace lakefuzz
