// Small string utilities shared across the library.
#ifndef LAKEFUZZ_UTIL_STR_H_
#define LAKEFUZZ_UTIL_STR_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace lakefuzz {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" → {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// ASCII lower/upper casing (bytes >= 0x80 pass through unchanged).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Renders a double with fixed precision and no trailing-zero noise beyond it.
std::string FormatDouble(double v, int precision);

/// 1234567 → "1,234,567" (for benchmark output).
std::string WithThousandsSep(int64_t v);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_STR_H_
