#include "util/thread_pool.h"

#include <atomic>

namespace lakefuzz {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop();
    }
    // Two clock reads per task bound the instrumentation cost; tasks here
    // are coarse (a ParallelFor lane's whole loop, an FD subtree batch), so
    // the reads are noise next to the work they bracket.
    const uint64_t start = NowNs();
    queue_wait_ns_.fetch_add(start - item.enqueue_ns,
                             std::memory_order_relaxed);
    item.fn();
    busy_ns_.fetch_add(NowNs() - start, std::memory_order_relaxed);
    tasks_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelForWithLane(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  std::vector<std::future<void>> futures;
  size_t lanes = std::min(n, workers_.size());
  futures.reserve(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(Submit([&next, n, &fn, lane] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(lane, i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling with a shared index counter: work items can be very
  // uneven (FD component sizes are skewed), so static chunking is wasteful.
  std::atomic<size_t> next{0};
  std::vector<std::future<void>> futures;
  size_t lanes = std::min(n, workers_.size());
  futures.reserve(lanes);
  for (size_t t = 0; t < lanes; ++t) {
    futures.push_back(Submit([&next, n, &fn] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace lakefuzz
