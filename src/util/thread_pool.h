// Fixed-size thread pool used by the parallel Full Disjunction executor.
#ifndef LAKEFUZZ_UTIL_THREAD_POOL_H_
#define LAKEFUZZ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lakefuzz {

/// A minimal work-queue thread pool.
///
/// Tasks are `std::function<void()>`; `Submit` returns a future for the task's
/// result. The destructor drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all finish.
  /// `fn` must be safe to invoke concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but passes fn(lane, i) where `lane` is a dense id in
  /// [0, min(n, num_threads())) identifying the executing work lane — at most
  /// one item runs per lane at a time, so lane-indexed scratch state needs no
  /// further synchronization.
  void ParallelForWithLane(size_t n,
                           const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n): on `pool` when one is provided, inline
/// otherwise. The pool-or-serial dispatch shared by stages that take an
/// optional pool (FD index build, subsumption).
inline void MaybeParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->ParallelFor(n, fn);
  }
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_THREAD_POOL_H_
