// Fixed-size thread pool used by the parallel Full Disjunction executor.
#ifndef LAKEFUZZ_UTIL_THREAD_POOL_H_
#define LAKEFUZZ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lakefuzz {

/// Monotonically accumulating execution counters of a ThreadPool. All
/// fields only grow, so a caller brackets a work phase with two stats()
/// snapshots and subtracts to profile that phase. busy vs. queue-wait is
/// the core-starvation signal the bench artifacts record: on a box granted
/// fewer cores than the pool has workers, busy_ns stays near wall time
/// (not workers × wall time) no matter how much work is queued.
struct PoolStats {
  uint64_t tasks = 0;          ///< tasks dequeued and executed
  uint64_t busy_ns = 0;        ///< Σ task execution time across workers
  uint64_t queue_wait_ns = 0;  ///< Σ enqueue→dequeue latency across tasks

  PoolStats operator-(const PoolStats& other) const {
    return PoolStats{tasks - other.tasks, busy_ns - other.busy_ns,
                     queue_wait_ns - other.queue_wait_ns};
  }
};

/// A minimal work-queue thread pool.
///
/// Tasks are `std::function<void()>`; `Submit` returns a future for the task's
/// result. The destructor drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Nanosecond monotonic timestamp (the clock PoolStats accumulates in).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(Item{[task] { (*task)(); }, NowNs()});
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all finish.
  /// `fn` must be safe to invoke concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but passes fn(lane, i) where `lane` is a dense id in
  /// [0, min(n, num_threads())) identifying the executing work lane — at most
  /// one item runs per lane at a time, so lane-indexed scratch state needs no
  /// further synchronization.
  void ParallelForWithLane(size_t n,
                           const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Cumulative execution counters since construction (cheap: three relaxed
  /// atomic loads). Subtract two snapshots to profile a phase; when the pool
  /// is shared (a LakeEngine session pool serving concurrent requests) the
  /// delta covers everything the pool ran in between, not just the caller's
  /// tasks.
  PoolStats stats() const {
    PoolStats s;
    s.tasks = tasks_.load(std::memory_order_relaxed);
    s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
    s.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Item {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Item> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> busy_ns_{0};
  std::atomic<uint64_t> queue_wait_ns_{0};
};

/// Runs fn(i) for i in [0, n): on `pool` when one is provided, inline
/// otherwise. The pool-or-serial dispatch shared by stages that take an
/// optional pool (FD index build, subsumption).
inline void MaybeParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->ParallelFor(n, fn);
  }
}

/// Lane-aware twin of MaybeParallelFor: fn(lane, i) with lane < MaxLanes(
/// pool, n). Serial fallback runs every item on lane 0. Stages with
/// per-lane scratch (sketch builders, FD enumeration) use this to reuse
/// worker-private state without locks.
inline void MaybeParallelForWithLane(
    ThreadPool* pool, size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
  } else {
    pool->ParallelForWithLane(n, fn);
  }
}

/// Number of distinct lanes MaybeParallelForWithLane can touch — the size
/// to allocate for lane-indexed scratch.
inline size_t MaxLanes(ThreadPool* pool, size_t n) {
  if (pool == nullptr || n <= 1) return 1;
  return std::min(n, pool->num_threads());
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_THREAD_POOL_H_
