// Union-find (disjoint set) structures used by the FD join-graph index.
//
// Two variants:
//   UnionFind        — serial, iterative, union by rank with path halving.
//   AtomicUnionFind  — lock-free (CAS on parent pointers), union by minimum
//                      index, for concurrent merging of posting-list shards.
//                      Links always point from larger to smaller index, so
//                      parent chains strictly decrease (no cycles under any
//                      interleaving) and the final root of every component is
//                      its smallest member — the partition is deterministic
//                      regardless of thread schedule.
#ifndef LAKEFUZZ_UTIL_UNION_FIND_H_
#define LAKEFUZZ_UTIL_UNION_FIND_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace lakefuzz {

/// Serial disjoint-set forest. Iterative find with path halving; union by
/// rank. All operations are O(α(n)) amortized.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of `a` and `b`; returns the surviving root.
  uint32_t Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return a;
  }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

/// Concurrent disjoint-set forest. Safe for parallel Union/Find from many
/// threads (Anderson & Woll style: CAS-published parent links, path halving).
class AtomicUnionFind {
 public:
  explicit AtomicUnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i].store(static_cast<uint32_t>(i), std::memory_order_relaxed);
    }
  }

  uint32_t Find(uint32_t x) {
    while (true) {
      uint32_t p = parent_[x].load(std::memory_order_relaxed);
      if (p == x) return x;
      uint32_t gp = parent_[p].load(std::memory_order_relaxed);
      if (gp == p) return p;
      // Path halving; a lost race leaves a longer (still correct) path.
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_relaxed);
      x = gp;
    }
  }

  void Union(uint32_t a, uint32_t b) {
    while (true) {
      a = Find(a);
      b = Find(b);
      if (a == b) return;
      if (a > b) std::swap(a, b);  // larger index links under smaller
      uint32_t expected = b;
      if (parent_[b].compare_exchange_strong(expected, a,
                                             std::memory_order_acq_rel)) {
        return;
      }
      // b was re-parented concurrently; retry from the new roots. Linking a
      // stale `a` is harmless: parent links only ever decrease, so chains
      // stay acyclic and set membership is preserved.
    }
  }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<std::atomic<uint32_t>> parent_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_UTIL_UNION_FIND_H_
