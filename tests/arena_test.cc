// Tests for the per-worker bump-pointer arena (util/arena.h) and the
// thread-pool execution counters (PoolStats): mark/rewind scope discipline,
// grow-in-place, block reuse across Reset, the ArenaVector heap fallback
// that keeps "arena off" on the identical code path, and a many-tiny-tasks
// pool stress asserting arena reuse never aliases live data (the ASan job
// re-runs this under the allocator poisoners).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "util/arena.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

TEST(ArenaTest, MarkRewindReleasesLifo) {
  ArenaAllocator arena(/*min_block_bytes=*/256);
  uint32_t* a = arena.AllocArray<uint32_t>(8);
  for (int i = 0; i < 8; ++i) a[i] = 100 + i;

  ArenaAllocator::Mark m = arena.mark();
  uint32_t* b = arena.AllocArray<uint32_t>(8);
  for (int i = 0; i < 8; ++i) b[i] = 200 + i;
  arena.Rewind(m);

  // The rewound region is reused; the allocation made before the mark is
  // untouched.
  uint32_t* c = arena.AllocArray<uint32_t>(8);
  EXPECT_EQ(c, b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a[i], 100u + i);
}

TEST(ArenaTest, TryExtendGrowsOnlyTopAllocation) {
  ArenaAllocator arena(/*min_block_bytes=*/1024);
  uint32_t* top = arena.AllocArray<uint32_t>(4);
  EXPECT_TRUE(arena.TryExtend(top, 4 * sizeof(uint32_t),
                              8 * sizeof(uint32_t)));
  // A second allocation buries `top`; it can no longer grow in place.
  arena.AllocArray<uint32_t>(2);
  EXPECT_FALSE(arena.TryExtend(top, 8 * sizeof(uint32_t),
                               16 * sizeof(uint32_t)));
}

TEST(ArenaTest, ResetKeepsReservedBlocksAndPeak) {
  ArenaAllocator arena(/*min_block_bytes=*/128);
  for (int i = 0; i < 6; ++i) arena.AllocArray<char>(200);  // forces growth
  const size_t reserved = arena.bytes_reserved();
  const size_t peak = arena.peak_bytes();
  EXPECT_GE(reserved, 6u * 200u);
  EXPECT_GE(peak, 6u * 200u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // capacity retained
  arena.AllocArray<char>(64);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // ...and reused, not grown
  EXPECT_GE(arena.peak_bytes(), peak);          // high-water never shrinks
}

TEST(ArenaTest, ArenaVectorMatchesHeapFallbackExactly) {
  // One code path, two allocators: pushing the same sequence through an
  // arena-backed and a heap-backed ArenaVector must produce identical
  // contents (this is what makes FdOptions::scratch_arena a pure allocation
  // knob).
  ArenaAllocator arena;
  ArenaVector<uint32_t> on(&arena);
  ArenaVector<uint32_t> off(nullptr);
  for (uint32_t i = 0; i < 5000; ++i) {
    on.push_back(i * 2654435761u);
    off.push_back(i * 2654435761u);
  }
  ASSERT_EQ(on.size(), off.size());
  EXPECT_EQ(std::memcmp(on.data(), off.data(),
                        on.size() * sizeof(uint32_t)),
            0);
  on.pop_back();
  off.pop_back();
  EXPECT_EQ(on.back(), off.back());
}

TEST(ArenaTest, InterleavedVectorsStayDisjoint) {
  // The FD hot-path shape: a long-lived vector (locally_excluded) grows
  // between per-iteration frames that allocate and rewind short-lived ones.
  // Growth of the long-lived vector must never clobber data the frames
  // wrote before it, and vice versa.
  ArenaAllocator arena(/*min_block_bytes=*/256);
  ArenaFrame outer(&arena);
  ArenaVector<uint32_t> durable(&arena);
  for (uint32_t round = 0; round < 300; ++round) {
    {
      ArenaFrame inner(&arena);
      ArenaVector<uint32_t> scratch(&arena);
      for (uint32_t i = 0; i < 17; ++i) scratch.push_back(~round);
    }
    durable.push_back(round);
  }
  for (uint32_t round = 0; round < 300; ++round) {
    ASSERT_EQ(durable[round], round) << "durable data clobbered";
  }
}

TEST(ArenaTest, StlAllocatorBacksNodeContainers) {
  ArenaAllocator arena;
  using Set = std::unordered_set<uint64_t, std::hash<uint64_t>,
                                 std::equal_to<uint64_t>,
                                 ArenaStlAllocator<uint64_t>>;
  {
    Set seen(0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
             ArenaStlAllocator<uint64_t>(&arena));
    for (uint64_t i = 0; i < 4000; ++i) seen.insert(i % 1024);
    EXPECT_EQ(seen.size(), 1024u);
  }
  EXPECT_GT(arena.peak_bytes(), 0u);
  arena.Reset();  // deallocate was a no-op; this is where memory returns
}

TEST(ArenaPoolStressTest, ManyTinyTasksNeverAliasLiveData) {
  // Per-lane arenas under the real pool, Reset between tasks exactly like
  // the FD worker loop: each task fills a lane-tagged pattern, then checks
  // every word it wrote. Any cross-task aliasing through the reused blocks
  // shows up as a pattern mismatch (and ASan catches stale pointers).
  ThreadPool pool(4);
  const size_t lanes = MaxLanes(&pool, /*n=*/4096);
  std::vector<ArenaAllocator> arenas(lanes);
  std::atomic<uint64_t> mismatches{0};
  pool.ParallelForWithLane(4096, [&](size_t lane, size_t task) {
    ArenaAllocator& arena = arenas[lane];
    arena.Reset();
    const uint32_t tag = static_cast<uint32_t>(task * 0x9e3779b9u + lane);
    ArenaVector<uint32_t> grown(&arena);
    const size_t n = 1 + task % 97;  // vary size so blocks get re-cut
    for (size_t i = 0; i < n; ++i) {
      grown.push_back(tag + static_cast<uint32_t>(i));
      // Interleave a frame-scoped throwaway to churn the bump pointer.
      ArenaFrame frame(&arena);
      uint32_t* tmp = arena.AllocArray<uint32_t>(1 + i % 13);
      tmp[0] = ~tag;
    }
    for (size_t i = 0; i < n; ++i) {
      if (grown[i] != tag + static_cast<uint32_t>(i)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(PoolStatsTest, CountersGrowAndSnapshotSubtractIsolatesPhase) {
  ThreadPool pool(2);
  const PoolStats before = pool.stats();
  pool.ParallelFor(64, [](size_t) {
    volatile uint64_t x = 0;
    for (int i = 0; i < 20000; ++i) x += i;
  });
  const PoolStats delta = pool.stats() - before;
  // ParallelFor submits one task per worker share; every one executed and
  // spent measurable time.
  EXPECT_GT(delta.tasks, 0u);
  EXPECT_GT(delta.busy_ns, 0u);

  const PoolStats idle_before = pool.stats();
  const PoolStats idle_delta = pool.stats() - idle_before;
  EXPECT_EQ(idle_delta.tasks, 0u);
  EXPECT_EQ(idle_delta.busy_ns, 0u);
}

}  // namespace
}  // namespace lakefuzz
