// Tests for src/assignment: Jonker-Volgenant, greedy, thresholded, sparse.
//
// The optimal solver is property-tested against exhaustive enumeration on
// random small matrices — the strongest correctness statement available for
// an optimization algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "assignment/cost_matrix.h"
#include "assignment/greedy.h"
#include "assignment/jonker_volgenant.h"
#include "assignment/thresholded.h"
#include "util/rng.h"

namespace lakefuzz {
namespace {

CostMatrix FromRows(std::vector<std::vector<double>> rows) {
  CostMatrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m.set(r, c, rows[r][c]);
  }
  return m;
}

/// Exhaustive optimal assignment for tiny matrices (reference oracle).
double BruteForceBest(const CostMatrix& m) {
  // Permute over the smaller dimension.
  size_t nr = m.rows();
  size_t nc = m.cols();
  bool transpose = nr > nc;
  size_t small = transpose ? nc : nr;
  size_t large = transpose ? nr : nc;
  std::vector<size_t> perm(large);
  for (size_t i = 0; i < large; ++i) perm[i] = i;
  double best = std::numeric_limits<double>::infinity();
  std::sort(perm.begin(), perm.end());
  do {
    double total = 0;
    bool feasible = true;
    for (size_t i = 0; i < small; ++i) {
      double v = transpose ? m.at(perm[i], i) : m.at(i, perm[i]);
      if (v == CostMatrix::kForbidden) {
        feasible = false;
        break;
      }
      total += v;
    }
    if (feasible) best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

// ---------------------------------------------------------------- JV basics

TEST(JonkerVolgenantTest, EmptyMatrix) {
  auto r = SolveAssignment(CostMatrix());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->pairs.empty());
  EXPECT_DOUBLE_EQ(r->total_cost, 0.0);
}

TEST(JonkerVolgenantTest, SingleCell) {
  auto r = SolveAssignment(FromRows({{3.5}}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pairs.size(), 1u);
  EXPECT_EQ(r->pairs[0], (std::pair<size_t, size_t>{0, 0}));
  EXPECT_DOUBLE_EQ(r->total_cost, 3.5);
}

TEST(JonkerVolgenantTest, ClassicThreeByThree) {
  // Known instance: optimal = 5 (0→1, 1→0, 2→2).
  auto r = SolveAssignment(FromRows({{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, 5.0);
  EXPECT_EQ(r->pairs.size(), 3u);
}

TEST(JonkerVolgenantTest, RectangularWideAssignsAllRows) {
  auto r = SolveAssignment(FromRows({{10, 1, 10, 10}, {1, 10, 10, 10}}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(r->total_cost, 2.0);
}

TEST(JonkerVolgenantTest, RectangularTallAssignsAllCols) {
  auto r = SolveAssignment(FromRows({{10, 1}, {1, 10}, {5, 5}}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(r->total_cost, 2.0);
}

TEST(JonkerVolgenantTest, NegativeCostsSupported) {
  auto r = SolveAssignment(FromRows({{-1, 2}, {2, -3}}));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, -4.0);
}

TEST(JonkerVolgenantTest, ForbiddenPairsExcludedFromResult) {
  CostMatrix m = FromRows({{1, 2}, {3, 4}});
  m.set(0, 0, CostMatrix::kForbidden);
  m.set(0, 1, CostMatrix::kForbidden);
  auto r = SolveAssignment(m);
  ASSERT_TRUE(r.ok());
  // Row 0 has no allowed column: only row 1 is matched.
  ASSERT_EQ(r->pairs.size(), 1u);
  EXPECT_EQ(r->pairs[0].first, 1u);
}

TEST(JonkerVolgenantTest, ForbiddenDoesNotDistortOptimum) {
  CostMatrix m = FromRows({{1, 5}, {2, CostMatrix::kForbidden}});
  auto r = SolveAssignment(m);
  ASSERT_TRUE(r.ok());
  // Row 1 must take column 0, pushing row 0 to column 1: cost 7.
  EXPECT_DOUBLE_EQ(r->total_cost, 7.0);
}

TEST(JonkerVolgenantTest, RejectsNaN) {
  CostMatrix m = FromRows({{std::nan("")}});
  EXPECT_FALSE(SolveAssignment(m).ok());
}

TEST(JonkerVolgenantTest, PairsSortedByRow) {
  auto r = SolveAssignment(FromRows({{1, 9, 9}, {9, 1, 9}, {9, 9, 1}}));
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->pairs.size(); ++i) {
    EXPECT_LT(r->pairs[i - 1].first, r->pairs[i].first);
  }
}

// ------------------------------------------------------- dual warm start

TEST(JonkerVolgenantTest, WarmStartPreservesOptimumOnRandomMatrices) {
  // Property: any warm duals (here: the previous round's, over matrices
  // that keep changing shape and content — the auto_threshold probe-loop
  // pattern) are clamped to feasibility, so the optimal VALUE must equal
  // the cold solve's on every instance.
  Rng rng(20260731);
  JvDuals duals;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t rows = 1 + rng.Uniform(6);
    const size_t cols = 1 + rng.Uniform(6);
    CostMatrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        // Mix of signs: feasibility clamping must not assume cost >= 0.
        m.set(r, c, rng.UniformReal(-1.0, 2.0));
      }
    }
    auto cold = SolveAssignment(m);
    auto warm = SolveAssignment(m, &duals);  // duals carried across trials
    ASSERT_TRUE(cold.ok() && warm.ok()) << trial;
    EXPECT_NEAR(cold->total_cost, warm->total_cost, 1e-9) << trial;
    EXPECT_EQ(cold->pairs.size(), warm->pairs.size()) << trial;
  }
}

TEST(JonkerVolgenantTest, WarmStartFromOwnDualsReproducesAssignment) {
  // Re-solving the same matrix warm-started from its own duals is the
  // probe → thresholded-solve pattern; with continuous random costs the
  // optimum is unique, so the pairs must match exactly.
  Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.Uniform(6);
    CostMatrix m(n, n);  // square: the case warm duals actually apply to
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) {
        m.set(r, c, rng.UniformReal());
      }
    }
    JvDuals duals;
    auto first = SolveAssignment(m, &duals);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(duals.col.size(), m.cols());
    auto second = SolveAssignment(m, &duals);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->pairs, second->pairs) << trial;
    EXPECT_NEAR(first->total_cost, second->total_cost, 1e-9) << trial;
  }
}

// ------------------------------------------------- JV vs brute force (P)

struct RandomCase {
  size_t rows;
  size_t cols;
  double forbidden_prob;
};

class JvRandomProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(JvRandomProperty, MatchesBruteForceOptimum) {
  const RandomCase& rc = GetParam();
  Rng rng(1000 + rc.rows * 31 + rc.cols * 7 +
          static_cast<uint64_t>(rc.forbidden_prob * 100));
  for (int trial = 0; trial < 40; ++trial) {
    CostMatrix m(rc.rows, rc.cols);
    for (size_t r = 0; r < rc.rows; ++r) {
      for (size_t c = 0; c < rc.cols; ++c) {
        m.set(r, c, rng.Bernoulli(rc.forbidden_prob)
                        ? CostMatrix::kForbidden
                        : std::round(rng.UniformReal() * 100) / 10.0);
      }
    }
    auto solved = SolveAssignment(m);
    ASSERT_TRUE(solved.ok());
    double brute = BruteForceBest(m);
    if (std::isinf(brute)) {
      // No full assignment exists; JV returns a partial one. Its matched
      // pairs must still avoid forbidden entries.
      for (auto [r, c] : solved->pairs) {
        EXPECT_FALSE(m.forbidden(r, c));
      }
      continue;
    }
    EXPECT_NEAR(solved->total_cost, brute, 1e-9)
        << rc.rows << "x" << rc.cols << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JvRandomProperty,
    ::testing::Values(RandomCase{1, 1, 0.0}, RandomCase{2, 2, 0.0},
                      RandomCase{3, 3, 0.0}, RandomCase{4, 4, 0.0},
                      RandomCase{5, 5, 0.0}, RandomCase{6, 6, 0.0},
                      RandomCase{2, 5, 0.0}, RandomCase{5, 2, 0.0},
                      RandomCase{3, 6, 0.0}, RandomCase{4, 4, 0.2},
                      RandomCase{5, 5, 0.4}, RandomCase{3, 5, 0.3}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "r" + std::to_string(info.param.rows) + "c" +
             std::to_string(info.param.cols) + "f" +
             std::to_string(static_cast<int>(info.param.forbidden_prob * 100));
    });

// ---------------------------------------------------------------- Greedy

TEST(GreedyTest, OptimalOnDiagonal) {
  auto r = SolveGreedy(FromRows({{1, 9}, {9, 1}}));
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
}

TEST(GreedyTest, KnownSuboptimalInstance) {
  // Greedy takes (0,0)=1 then is forced into (1,1)=100 → 101;
  // optimal is (0,1)+(1,0) = 2+3 = 5.
  CostMatrix m = FromRows({{1, 2}, {3, 100}});
  Assignment greedy = SolveGreedy(m);
  auto optimal = SolveAssignment(m);
  ASSERT_TRUE(optimal.ok());
  EXPECT_DOUBLE_EQ(greedy.total_cost, 101.0);
  EXPECT_DOUBLE_EQ(optimal->total_cost, 5.0);
}

TEST(GreedyTest, SkipsForbidden) {
  CostMatrix m = FromRows({{CostMatrix::kForbidden, 2}, {3, 4}});
  Assignment r = SolveGreedy(m);
  for (auto [row, col] : r.pairs) EXPECT_FALSE(m.forbidden(row, col));
  EXPECT_EQ(r.pairs.size(), 2u);
}

TEST(GreedyTest, NeverBeatsOptimal) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.Uniform(5);
    CostMatrix m(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) m.set(r, c, rng.UniformReal());
    }
    auto opt = SolveAssignment(m);
    ASSERT_TRUE(opt.ok());
    EXPECT_GE(SolveGreedy(m).total_cost, opt->total_cost - 1e-9);
  }
}

// ---------------------------------------------------------------- Thresholded

TEST(ThresholdedTest, DropsPairsAtOrAboveTheta) {
  ThresholdedOptions opts;
  opts.threshold = 0.5;
  auto r = SolveThresholded(FromRows({{0.1, 0.9}, {0.9, 0.5}}), opts);
  ASSERT_TRUE(r.ok());
  // (1,1) has cost exactly 0.5 → excluded (Definition 2 uses strict <).
  ASSERT_EQ(r->pairs.size(), 1u);
  EXPECT_EQ(r->pairs[0], (std::pair<size_t, size_t>{0, 0}));
}

TEST(ThresholdedTest, MaskBeforeSolveRecoversBlockedMatch) {
  // Unmasked optimal pairs (0,0)+(1,1) = 0.1+0.8 = 0.9 (beats 0.95), but
  // 0.8 ≥ θ gets filtered → 1 match. Masking 0.8 first makes the solver
  // shift row 0 to col 1 so row 1 can take col 0 → 2 matches.
  CostMatrix m = FromRows({{0.1, 0.65}, {0.3, 0.8}});
  ThresholdedOptions masked;
  masked.threshold = 0.7;
  masked.mask_before_solve = true;
  auto rm = SolveThresholded(m, masked);
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(rm->pairs.size(), 2u);

  ThresholdedOptions unmasked = masked;
  unmasked.mask_before_solve = false;
  auto ru = SolveThresholded(m, unmasked);
  ASSERT_TRUE(ru.ok());
  EXPECT_EQ(ru->pairs.size(), 1u);  // scipy-parity mode loses one match
}

TEST(ThresholdedTest, GreedyAlgorithmSelectable) {
  ThresholdedOptions opts;
  opts.threshold = 10.0;
  opts.algorithm = AssignmentAlgorithm::kGreedy;
  // 100 is masked (≥ θ); greedy then takes (0,0)=1, which blocks both
  // remaining pairs → one match. Optimal would find (0,1)+(1,0)=5.
  auto r = SolveThresholded(FromRows({{1, 2}, {3, 100}}), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(r->total_cost, 1.0);
  ThresholdedOptions optimal = opts;
  optimal.algorithm = AssignmentAlgorithm::kOptimal;
  auto ro = SolveThresholded(FromRows({{1, 2}, {3, 100}}), optimal);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(ro->pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(ro->total_cost, 5.0);
}

// ---------------------------------------------------------------- Sparse

TEST(SparseTest, EquivalentToDenseOnRandomInstances) {
  Rng rng(4242);
  ThresholdedOptions opts;
  opts.threshold = 0.7;
  // The sparse solver only ever sees sub-θ candidate edges, i.e. it is
  // inherently masked; compare against the masked dense solver.
  opts.mask_before_solve = true;
  for (int trial = 0; trial < 25; ++trial) {
    size_t rows = 1 + rng.Uniform(6);
    size_t cols = 1 + rng.Uniform(6);
    CostMatrix dense(rows, cols, CostMatrix::kForbidden);
    std::vector<SparseEdge> edges;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(0.5)) continue;  // sparse pattern
        double v = rng.UniformReal();
        dense.set(r, c, v);
        edges.push_back(SparseEdge{r, c, v});
      }
    }
    auto rd = SolveThresholded(dense, opts);
    auto rs = SolveSparseThresholded(rows, cols, edges, opts);
    ASSERT_TRUE(rd.ok());
    ASSERT_TRUE(rs.ok());
    // Optima agree (pair sets may differ only on ties).
    EXPECT_NEAR(rd->total_cost, rs->total_cost, 1e-9) << "trial " << trial;
    EXPECT_EQ(rd->pairs.size(), rs->pairs.size());
  }
}

TEST(SparseTest, OutOfRangeEdgeRejected) {
  ThresholdedOptions opts;
  auto r = SolveSparseThresholded(2, 2, {SparseEdge{5, 0, 0.1}}, opts);
  EXPECT_FALSE(r.ok());
}

TEST(SparseTest, ParallelEdgesKeepCheapest) {
  ThresholdedOptions opts;
  opts.threshold = 1.0;
  auto r = SolveSparseThresholded(
      1, 1, {SparseEdge{0, 0, 0.9}, SparseEdge{0, 0, 0.2}}, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(r->total_cost, 0.2);
}

TEST(SparseTest, IndependentComponentsAllSolved) {
  ThresholdedOptions opts;
  opts.threshold = 1.0;
  // Two disjoint components: {r0,c0} and {r1,r2}x{c1,c2}.
  auto r = SolveSparseThresholded(
      3, 3,
      {SparseEdge{0, 0, 0.1}, SparseEdge{1, 1, 0.2}, SparseEdge{1, 2, 0.3},
       SparseEdge{2, 1, 0.3}, SparseEdge{2, 2, 0.6}},
      opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pairs.size(), 3u);
  // Second component's optimum is the anti-diagonal 0.3 + 0.3.
  EXPECT_NEAR(r->total_cost, 0.1 + 0.3 + 0.3, 1e-12);
}

TEST(SparseTest, EmptyEdgesNoMatches) {
  ThresholdedOptions opts;
  auto r = SolveSparseThresholded(4, 4, {}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->pairs.empty());
}

// ---------------------------------------------------------------- CostMatrix

TEST(CostMatrixTest, MaxFiniteIgnoresForbidden) {
  CostMatrix m = FromRows({{1, 2}, {CostMatrix::kForbidden, 0.5}});
  EXPECT_DOUBLE_EQ(m.MaxFinite(), 2.0);
  CostMatrix all_forbidden(2, 2, CostMatrix::kForbidden);
  EXPECT_DOUBLE_EQ(all_forbidden.MaxFinite(), 0.0);
}

}  // namespace
}  // namespace lakefuzz
