// Process-kill recovery harness for the generation catalog. The parent (this
// test) forks tests/crash_harness.cc with LAKEFUZZ_CRASH_POINT="catalog/:N"
// and sweeps N upward, so the child dies via std::_Exit(137) at EVERY
// catalog IO seam in sequence — each write, fsync, rename, read, and mmap of
// both a full save (generation 1) and an incremental save (generation 2).
// After each kill the parent re-opens the directory in-process and asserts
// the crash-consistency contract: the last committed generation is intact
// and answers Integrate / DiscoverUnionable byte-identically to an engine
// that never touched disk, later partial writes are invisible, and a writer
// can keep checkpointing over the wreckage.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/engine.h"
#include "crash_lake.h"
#include "util/fault_injection.h"

#if !defined(LAKEFUZZ_FAULT_POINTS) || !defined(__unix__)

TEST(CatalogCrashTest, KillAtEveryCatalogSeam) {
  GTEST_SKIP() << "needs -DLAKEFUZZ_FAULT_POINTS=ON and fork/exec";
}

#else  // LAKEFUZZ_FAULT_POINTS && __unix__

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lakefuzz {
namespace {

/// The sweep must terminate: two saves of this small lake poke far fewer
/// catalog seams than this.
constexpr uint64_t kMaxCountdown = 500;
/// And it must actually have killed the child at a healthy number of
/// distinct seams — segments + manifest + CURRENT across two saves.
constexpr uint64_t kMinCrashes = 10;

std::string HarnessPath() {
  if (const char* env = std::getenv("LAKEFUZZ_CRASH_HARNESS")) return env;
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "crash_harness";
  buf[n] = '\0';
  return std::filesystem::path(buf).parent_path() / "crash_harness";
}

/// Forks + execs the harness against `dir` with the crash armed at
/// `countdown`. Returns the child's exit code (-1 on abnormal death).
int RunChild(const std::string& harness, const std::string& dir,
             uint64_t countdown) {
  const pid_t pid = fork();
  if (pid == 0) {
    const std::string spec = "catalog/:" + std::to_string(countdown);
    setenv("LAKEFUZZ_CRASH_POINT", spec.c_str(), 1);
    execl(harness.c_str(), harness.c_str(), dir.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.schema().field(c).name, b.schema().field(c).name);
  }
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      EXPECT_TRUE(a.At(r, c) == b.At(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

/// One committed lake version the recovery must be indistinguishable from:
/// an engine built straight from memory, plus its precomputed answers.
struct ReferenceVersion {
  std::unique_ptr<LakeEngine> engine;
  std::vector<std::string> names;  // sorted — the Integrate argument
  Table integrated;
  std::vector<DiscoveryCandidate> discovered;
};

ReferenceVersion MakeReference(
    std::vector<std::pair<std::string, Table>> lake) {
  ReferenceVersion ref;
  auto engine = crashlake::MakeEngine();
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  ref.engine = std::move(engine).value();
  for (auto& entry : lake) {
    EXPECT_TRUE(
        ref.engine->RegisterTable(entry.first, std::move(entry.second)).ok());
    ref.names.push_back(entry.first);
  }
  std::sort(ref.names.begin(), ref.names.end());
  auto integrated = ref.engine->Integrate(ref.names);
  EXPECT_TRUE(integrated.ok()) << integrated.status().ToString();
  ref.integrated = std::move(integrated->integrated);
  auto top = ref.engine->DiscoverUnionable("cities_eu", 4);
  EXPECT_TRUE(top.ok()) << top.status().ToString();
  ref.discovered = std::move(top).value();
  return ref;
}

/// The recovered engine must be indistinguishable from the reference at the
/// generation it recovered to.
void ExpectMatchesReference(LakeEngine* recovered,
                            const ReferenceVersion& ref) {
  std::vector<std::string> names = recovered->TableNames();
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names, ref.names);
  auto integrated = recovered->Integrate(ref.names);
  ASSERT_TRUE(integrated.ok()) << integrated.status().ToString();
  ExpectTablesIdentical(integrated->integrated, ref.integrated);
  auto top = recovered->DiscoverUnionable("cities_eu", 4);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->size(), ref.discovered.size());
  for (size_t i = 0; i < top->size(); ++i) {
    EXPECT_EQ((*top)[i].name, ref.discovered[i].name);
    EXPECT_EQ((*top)[i].score, ref.discovered[i].score) << (*top)[i].name;
  }
}

TEST(CatalogCrashTest, KillAtEveryCatalogSeam) {
  const std::string harness = HarnessPath();
  ASSERT_TRUE(std::filesystem::exists(harness))
      << harness << " not built next to this test binary "
      << "(set LAKEFUZZ_CRASH_HARNESS to override)";

  const ReferenceVersion v1 = MakeReference(crashlake::V1Tables());
  const ReferenceVersion v2 = MakeReference(crashlake::V2Tables());

  uint64_t crashes = 0;
  bool clean_exit = false;
  for (uint64_t countdown = 0; countdown <= kMaxCountdown; ++countdown) {
    const std::string dir = testing::TempDir() + "/lakefuzz_crash_" +
                            std::to_string(countdown);
    std::filesystem::remove_all(dir);

    const int code = RunChild(harness, dir, countdown);
    if (code == 0) {
      // Countdown outlived every poke of both saves: the sweep covered
      // every seam. The fully committed directory must be at V2.
      clean_exit = true;
      auto recovered = crashlake::MakeEngine();
      ASSERT_TRUE(recovered.ok());
      ASSERT_TRUE((*recovered)->OpenCatalog(dir).ok());
      ExpectMatchesReference(recovered->get(), v2);
      std::filesystem::remove_all(dir);
      break;
    }
    ASSERT_EQ(code, FaultInjector::kCrashExitCode)
        << "child failed (not crashed) at countdown " << countdown;
    ++crashes;

    // --- Recovery: re-open after the kill. ---
    auto recovered = crashlake::MakeEngine();
    ASSERT_TRUE(recovered.ok());
    auto open = (*recovered)->OpenCatalog(dir);
    const bool committed =
        std::filesystem::exists(dir + "/" + kCatalogCurrentFile);
    if (!committed) {
      // Death before the first CURRENT rename: nothing was ever published,
      // and the open must say so with a typed error, not a crash or a
      // half-lake.
      ASSERT_FALSE(open.ok()) << "open succeeded without a CURRENT pointer";
      EXPECT_EQ((*recovered)->NumTables(), 0u);
    } else {
      ASSERT_TRUE(open.ok())
          << "countdown " << countdown << ": " << open.status().ToString();
      const uint64_t gen = open->generation;
      ASSERT_TRUE(gen == 1 || gen == 2)
          << "recovered unexpected generation " << gen;
      EXPECT_EQ((*recovered)->catalog_generation(), gen);
      // Last committed generation intact, later partial writes invisible:
      // the lake content IS the committed version's, nothing else.
      ExpectMatchesReference(recovered->get(), gen == 1 ? v1 : v2);

      // The wreckage (orphan manifests, stale tmp files, half-written
      // segments past the committed extents) must not stop the writer from
      // checkpointing again — and the new commit lands strictly after.
      ASSERT_TRUE(
          (*recovered)
              ->RegisterTable("post_crash", crashlake::TableD())
              .ok());
      auto resave = (*recovered)->SaveCatalog(dir);
      ASSERT_TRUE(resave.ok())
          << "countdown " << countdown << ": " << resave.status().ToString();
      EXPECT_GT(resave->generation, gen);
    }
    std::filesystem::remove_all(dir);
  }

  EXPECT_TRUE(clean_exit)
      << "sweep never reached a clean child exit within " << kMaxCountdown
      << " countdowns";
  EXPECT_GE(crashes, kMinCrashes)
      << "too few catalog seams fired — is fault injection armed?";
}

}  // namespace
}  // namespace lakefuzz

#endif  // LAKEFUZZ_FAULT_POINTS && __unix__
