// Tests for read-only replica engines over the generation catalog:
// OpenReplica identity with the writer, RefreshReplica following commits
// (adds, changes, drops), the read-only guard on every mutating entry
// point, seeded writer/replica interleavings where every observed
// generation must be internally consistent and monotonically increasing,
// a live concurrent writer-vs-refresher run, and the retention pin that
// keeps a replica's generation alive past the writer's GC horizon.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "core/engine.h"
#include "crash_lake.h"
#include "util/rng.h"

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace lakefuzz {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/lakefuzz_replica_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.schema().field(c).name, b.schema().field(c).name);
  }
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      EXPECT_TRUE(a.At(r, c) == b.At(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

/// The replica must answer exactly like `writer` does right now.
void ExpectReplicaMatchesWriter(LakeEngine* replica, LakeEngine* writer) {
  std::vector<std::string> names = writer->TableNames();
  std::sort(names.begin(), names.end());
  std::vector<std::string> replica_names = replica->TableNames();
  std::sort(replica_names.begin(), replica_names.end());
  ASSERT_EQ(replica_names, names);
  auto from_writer = writer->Integrate(names);
  auto from_replica = replica->Integrate(names);
  ASSERT_TRUE(from_writer.ok()) << from_writer.status().ToString();
  ASSERT_TRUE(from_replica.ok()) << from_replica.status().ToString();
  ExpectTablesIdentical(from_replica->integrated, from_writer->integrated);
  auto writer_top = writer->DiscoverUnionable(names[0], 4);
  auto replica_top = replica->DiscoverUnionable(names[0], 4);
  ASSERT_TRUE(writer_top.ok() && replica_top.ok());
  ASSERT_EQ(replica_top->size(), writer_top->size());
  for (size_t i = 0; i < writer_top->size(); ++i) {
    EXPECT_EQ((*replica_top)[i].name, (*writer_top)[i].name);
    EXPECT_EQ((*replica_top)[i].score, (*writer_top)[i].score);
  }
}

std::unique_ptr<LakeEngine> MakeWriterWithV1(const std::string& dir) {
  auto engine = crashlake::MakeEngine();
  EXPECT_TRUE(engine.ok());
  for (auto& entry : crashlake::V1Tables()) {
    EXPECT_TRUE(
        (*engine)->RegisterTable(entry.first, std::move(entry.second)).ok());
  }
  EXPECT_TRUE((*engine)->SaveCatalog(dir).ok());
  return std::move(engine).value();
}

// ------------------------------------------------------------ basic modes

TEST(ReplicaTest, OpensLatestGenerationAndMatchesWriter) {
  const std::string dir = FreshDir("basic");
  auto writer = MakeWriterWithV1(dir);

  auto replica = LakeEngine::OpenReplica(dir);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_TRUE((*replica)->is_replica());
  EXPECT_FALSE(writer->is_replica());
  EXPECT_EQ((*replica)->catalog_generation(), 1u);
  ExpectReplicaMatchesWriter(replica->get(), writer.get());
  // Loading from segments, not re-sketching.
  EXPECT_EQ((*replica)->catalog_stats().columns_resketched, 0u);
}

TEST(ReplicaTest, MutationsAreRejectedTyped) {
  const std::string dir = FreshDir("readonly");
  auto writer = MakeWriterWithV1(dir);
  auto replica = LakeEngine::OpenReplica(dir);
  ASSERT_TRUE(replica.ok());

  EXPECT_EQ((*replica)->RegisterTable("x", crashlake::TableD()).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*replica)->RegisterCsv("x", "/nonexistent.csv").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*replica)->Unregister("cities_eu").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*replica)->SaveCatalog(dir).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*replica)->OpenCatalog(dir).code(),
            ErrorCode::kFailedPrecondition);
  // RefreshReplica is for replicas only — the writer direction is typed too.
  EXPECT_EQ(writer->RefreshReplica().code(), ErrorCode::kFailedPrecondition);
  // The rejected mutations left the replica fully serviceable.
  EXPECT_EQ((*replica)->NumTables(), 3u);
  ExpectReplicaMatchesWriter(replica->get(), writer.get());
}

TEST(ReplicaTest, OpenReplicaOnEmptyDirFailsTyped) {
  auto replica = LakeEngine::OpenReplica(FreshDir("empty"));
  EXPECT_EQ(replica.code(), ErrorCode::kIoError);
}

// --------------------------------------------------------------- refresh

TEST(ReplicaTest, RefreshFollowsAddsChangesAndDrops) {
  const std::string dir = FreshDir("refresh");
  auto writer = MakeWriterWithV1(dir);
  auto replica = LakeEngine::OpenReplica(dir);
  ASSERT_TRUE(replica.ok());

  // No new commit: refresh is a cheap no-op at the same generation.
  auto noop = (*replica)->RefreshReplica();
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->generation, 1u);
  EXPECT_EQ(noop->tables_kept, 3u);
  EXPECT_EQ((*replica)->catalog_stats().refreshes, 0u);

  // V1 → V2: replace cities_extra, add cities_na; drop beers on top.
  ASSERT_TRUE(writer->Unregister("cities_extra").ok());
  ASSERT_TRUE(
      writer->RegisterTable("cities_extra", crashlake::TableB2()).ok());
  ASSERT_TRUE(writer->RegisterTable("cities_na", crashlake::TableD()).ok());
  ASSERT_TRUE(writer->Unregister("beers").ok());
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());

  auto refreshed = (*replica)->RefreshReplica();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed->generation, 2u);
  EXPECT_EQ(refreshed->tables_replaced, 1u);  // cities_extra changed
  EXPECT_EQ(refreshed->tables_dropped, 1u);   // beers vanished
  EXPECT_EQ(refreshed->tables_loaded, 2u);    // new cities_extra + cities_na
  EXPECT_EQ(refreshed->tables_kept, 1u);      // cities_eu untouched
  EXPECT_EQ((*replica)->catalog_stats().refreshes, 1u);
  EXPECT_EQ((*replica)->catalog_generation(), 2u);
  ExpectReplicaMatchesWriter(replica->get(), writer.get());
}

/// Satellite 3's core property: the writer saves N times while a replica
/// refreshes at seeded random points. Every refresh must observe an
/// internally consistent generation (matching a reference engine for that
/// version) and the observed generation sequence must be monotone.
TEST(ReplicaTest, SeededInterleavedRefreshesSeeEveryGenerationConsistently) {
  for (uint64_t seed : {7u, 42u, 1234u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const std::string dir = FreshDir("interleave_" + std::to_string(seed));

    auto writer = crashlake::MakeEngine();
    ASSERT_TRUE(writer.ok());
    // Reference engines, one per committed version: version v holds tables
    // extra_0..extra_{v-1} alongside V1.
    std::vector<std::unique_ptr<LakeEngine>> references;

    auto seed_engine = [](LakeEngine* e) {
      for (auto& entry : crashlake::V1Tables()) {
        ASSERT_TRUE(
            e->RegisterTable(entry.first, std::move(entry.second)).ok());
      }
    };
    seed_engine(writer->get());

    auto replica = std::unique_ptr<LakeEngine>();
    std::vector<uint64_t> observed;
    constexpr int kSaves = 6;
    for (int v = 0; v < kSaves; ++v) {
      if (v > 0) {
        // Mutate: add one table per version (names are stable, content is
        // version-specific so every generation is distinguishable).
        auto t = Table::FromRows(
            "extra_" + std::to_string(v), {"K", "V"},
            {{crashlake::S("k"), crashlake::S(std::to_string(v * 1000))}});
        ASSERT_TRUE(t.ok());
        ASSERT_TRUE((*writer)
                        ->RegisterTable("extra_" + std::to_string(v),
                                        std::move(t).value())
                        .ok());
      }
      ASSERT_TRUE((*writer)->SaveCatalog(dir).ok());

      auto ref = crashlake::MakeEngine();
      ASSERT_TRUE(ref.ok());
      seed_engine(ref->get());
      for (int w = 1; w <= v; ++w) {
        auto t = Table::FromRows(
            "extra_" + std::to_string(w), {"K", "V"},
            {{crashlake::S("k"), crashlake::S(std::to_string(w * 1000))}});
        ASSERT_TRUE((*ref)
                        ->RegisterTable("extra_" + std::to_string(w),
                                        std::move(t).value())
                        .ok());
      }
      references.push_back(std::move(ref).value());

      // Seeded interleaving: sometimes open late, sometimes refresh after
      // this save, sometimes skip (so the next refresh jumps generations).
      if (replica == nullptr) {
        if (rng.UniformReal() < 0.7) {
          auto opened = LakeEngine::OpenReplica(dir);
          ASSERT_TRUE(opened.ok()) << opened.status().ToString();
          replica = std::move(opened).value();
          observed.push_back(replica->catalog_generation());
        }
      } else if (rng.UniformReal() < 0.7) {
        auto refreshed = replica->RefreshReplica();
        ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
        observed.push_back(refreshed->generation);
      }
      if (replica != nullptr) {
        // Whatever generation the replica sits at, it must match that
        // version's reference exactly (generation g == version index g-1).
        const uint64_t gen = replica->catalog_generation();
        ASSERT_GE(gen, 1u);
        ASSERT_LE(gen, references.size());
        ExpectReplicaMatchesWriter(replica.get(),
                                   references[gen - 1].get());
      }
    }
    // Final refresh must land on the last version.
    if (replica == nullptr) {
      auto opened = LakeEngine::OpenReplica(dir);
      ASSERT_TRUE(opened.ok());
      replica = std::move(opened).value();
    } else {
      ASSERT_TRUE(replica->RefreshReplica().ok());
    }
    observed.push_back(replica->catalog_generation());
    EXPECT_EQ(replica->catalog_generation(), uint64_t{kSaves});
    ExpectReplicaMatchesWriter(replica.get(), references.back().get());
    // Monotone: a replica never travels backwards in time.
    for (size_t i = 1; i < observed.size(); ++i) {
      EXPECT_GE(observed[i], observed[i - 1]);
    }
  }
}

/// Acceptance gate: a replica refreshing concurrently with three writer
/// checkpoints never observes a torn generation — every query between
/// refreshes runs against a complete committed lake.
TEST(ReplicaTest, ConcurrentRefreshNeverSeesTornGeneration) {
  const std::string dir = FreshDir("concurrent");
  auto writer = MakeWriterWithV1(dir);
  auto replica = LakeEngine::OpenReplica(dir);
  ASSERT_TRUE(replica.ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread refresher([&] {
    uint64_t last_gen = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto refreshed = (*replica)->RefreshReplica();
      if (!refreshed.ok()) {
        ++failures;
        continue;
      }
      if (refreshed->generation < last_gen) ++failures;
      last_gen = refreshed->generation;
      // A torn generation would surface here as a missing table, a failed
      // integrate, or a half-replaced lake.
      auto names = (*replica)->TableNames();
      if (names.empty()) ++failures;
      std::sort(names.begin(), names.end());
      auto integrated = (*replica)->Integrate(names);
      if (!integrated.ok()) ++failures;
    }
  });

  for (int checkpoint = 1; checkpoint <= 3; ++checkpoint) {
    auto t = Table::FromRows(
        "ckpt_" + std::to_string(checkpoint), {"N"},
        {{crashlake::S("row_" + std::to_string(checkpoint))}});
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(writer
                    ->RegisterTable("ckpt_" + std::to_string(checkpoint),
                                    std::move(t).value())
                    .ok());
    auto saved = writer->SaveCatalog(dir);
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  }
  done.store(true, std::memory_order_release);
  refresher.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_TRUE((*replica)->RefreshReplica().ok());
  EXPECT_EQ((*replica)->catalog_generation(), 4u);
  ExpectReplicaMatchesWriter(replica->get(), writer.get());
}

// ------------------------------------------------------- pins & retention

TEST(ReplicaTest, PinKeepsGenerationAlivePastRetention) {
  const std::string dir = FreshDir("pinned");
  auto writer_res = LakeEngine::Create(
      EngineOptions().SetNumThreads(1).SetCatalogRetainGenerations(1));
  ASSERT_TRUE(writer_res.ok());
  auto writer = std::move(writer_res).value();
  for (auto& entry : crashlake::V1Tables()) {
    ASSERT_TRUE(
        writer->RegisterTable(entry.first, std::move(entry.second)).ok());
  }
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());

  auto replica = LakeEngine::OpenReplica(dir);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ((*replica)->catalog_generation(), 1u);

  // retain=1 would normally retire generation 1 at the next commit, but the
  // replica's pin holds it (manifest AND base segments).
  ASSERT_TRUE(writer->RegisterTable("extra", crashlake::TableD()).ok());
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + CatalogManifestFileName(1)));
  // The replica still serves its pinned generation faithfully.
  EXPECT_EQ((*replica)->NumTables(), 3u);
  ASSERT_TRUE((*replica)->Integrate({"beers", "cities_eu"}).ok());

  // Refresh moves the pin; the next commit can finally retire generation 1.
  ASSERT_TRUE((*replica)->RefreshReplica().ok());
  EXPECT_EQ((*replica)->catalog_generation(), 2u);
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());  // commits generation 3
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + CatalogManifestFileName(1)));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + CatalogManifestFileName(2)));
}

TEST(ReplicaTest, DestroyedReplicaReleasesItsPin) {
  const std::string dir = FreshDir("unpin");
  auto writer_res = LakeEngine::Create(
      EngineOptions().SetNumThreads(1).SetCatalogRetainGenerations(1));
  ASSERT_TRUE(writer_res.ok());
  auto writer = std::move(writer_res).value();
  for (auto& entry : crashlake::V1Tables()) {
    ASSERT_TRUE(
        writer->RegisterTable(entry.first, std::move(entry.second)).ok());
  }
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());
  { auto replica = LakeEngine::OpenReplica(dir); ASSERT_TRUE(replica.ok()); }
  // Pin gone with the replica: the next two commits sweep generation 1.
  ASSERT_TRUE(writer->RegisterTable("extra", crashlake::TableD()).ok());
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + CatalogManifestFileName(1)));
}

#if defined(__unix__)
/// A replica that dies without cleanup leaves its pin file behind; the
/// writer's GC identifies the dead pid and sweeps the stale pin.
TEST(ReplicaTest, StalePinOfDeadProcessIsSwept) {
  const std::string dir = FreshDir("stalepin");
  auto writer_res = LakeEngine::Create(
      EngineOptions().SetNumThreads(1).SetCatalogRetainGenerations(1));
  ASSERT_TRUE(writer_res.ok());
  auto writer = std::move(writer_res).value();
  for (auto& entry : crashlake::V1Tables()) {
    ASSERT_TRUE(
        writer->RegisterTable(entry.first, std::move(entry.second)).ok());
  }
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());

  // Simulate the crashed replica: a child claims the pin and dies raw.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  const std::string stale_pin =
      dir + "/" + CatalogPinFileName(1, static_cast<int64_t>(pid), 0);
  { std::ofstream out(stale_pin); out << "\n"; }

  // The dead pid's pin does not hold generation 1 against retention.
  ASSERT_TRUE(writer->RegisterTable("extra", crashlake::TableD()).ok());
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());
  EXPECT_FALSE(std::filesystem::exists(stale_pin));
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + CatalogManifestFileName(1)));
}
#endif  // __unix__

}  // namespace
}  // namespace lakefuzz
