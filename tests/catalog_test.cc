// Tests for the durable lake catalog (src/catalog/): save → open round
// trips that reproduce Integrate / DiscoverUnionable byte-for-byte across
// thread counts, golden hash stability (the on-disk format's contract with
// Value::Hash / MinHash / LSH band keys), a corruption matrix that must
// degrade to typed errors instead of crashing, no-resurrection of dropped
// tables, and incremental checkpoints.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/engine.h"
#include "datagen/lake.h"
#include "discovery/column_sketch.h"
#include "discovery/lsh_index.h"
#include "util/hash.h"

namespace lakefuzz {
namespace {

Value S(const std::string& s) { return Value::String(s); }

/// Fresh per-test catalog directory under the gtest temp root.
std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/lakefuzz_catalog_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string PathOf(const std::string& dir, const char* file) {
  return dir + "/" + file;
}

/// Path of a generation's manifest. A fresh directory's first save commits
/// generation 1, which these tests rely on throughout.
std::string ManifestPath(const std::string& dir, uint64_t gen = 1) {
  return dir + "/" + CatalogManifestFileName(gen);
}

/// Path of a segment file at base `base` (1 after a fresh first save).
std::string SegmentPath(const std::string& dir, const char* stem,
                        uint64_t base = 1) {
  return dir + "/" + CatalogSegmentFileName(stem, base);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Patches the manifest's trailing checksum so tampering with the body is
/// seen as *valid-but-different* content (exercising the semantic checks)
/// rather than tripping the integrity check first.
void FixupManifestChecksum(std::string* manifest) {
  ASSERT_GE(manifest->size(), sizeof(uint64_t));
  const uint64_t sum =
      Fnv1a64(manifest->data(), manifest->size() - sizeof(uint64_t));
  std::memcpy(&(*manifest)[manifest->size() - sizeof(uint64_t)], &sum,
              sizeof(sum));
}

std::vector<Table> SmallLake() {
  std::vector<Table> tables;
  auto t0 = Table::FromRows("cities", {"City", "Country"},
                            {{S("Berlin"), S("Germany")},
                             {S("Toronto"), S("Canada")},
                             {S("Lima"), S("Peru")},
                             {Value::Null(), S("Nowhere")}});
  auto t1 = Table::FromRows("rates", {"City", "VacRate"},
                            {{S("Berlin"), Value::Double(0.63)},
                             {S("Lima"), Value::Double(0.71)},
                             {S("Quito"), Value::Double(0.55)}});
  auto t2 = Table::FromRows("mayors", {"City", "Mayor", "Since"},
                            {{S("Toronto"), S("Olivia"), Value::Int(2023)},
                             {S("Quito"), S("Pabel"), Value::Int(2023)},
                             {S("Berlin"), S("Kai"), Value::Int(2024)}});
  EXPECT_TRUE(t0.ok() && t1.ok() && t2.ok());
  tables.push_back(std::move(t0).value());
  tables.push_back(std::move(t1).value());
  tables.push_back(std::move(t2).value());
  return tables;
}

std::unique_ptr<LakeEngine> MakeEngine(size_t threads) {
  auto engine = LakeEngine::Create(EngineOptions().SetNumThreads(threads));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

std::unique_ptr<LakeEngine> MakeEngineWithSmallLake(size_t threads) {
  auto engine = MakeEngine(threads);
  for (auto& t : SmallLake()) {
    EXPECT_TRUE(engine->RegisterTable(t.name(), t).ok());
  }
  return engine;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.schema().field(c).name, b.schema().field(c).name);
  }
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      EXPECT_TRUE(a.At(r, c) == b.At(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

void ExpectSameCandidates(const std::vector<DiscoveryCandidate>& a,
                          const std::vector<DiscoveryCandidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
    EXPECT_EQ(a[i].overlap, b[i].overlap) << "rank " << i;
    EXPECT_EQ(a[i].compat, b[i].compat) << "rank " << i;
  }
}

// ----------------------------------------------------------- round trips

/// The acceptance property: SaveCatalog then OpenCatalog in a fresh engine
/// yields byte-identical Integrate and DiscoverUnionable results vs the
/// writer engine, at 1 / 2 / 8 threads, with zero columns re-sketched.
TEST(CatalogRoundTripTest, IdenticalResultsAcrossThreadCounts) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string dir =
        FreshDir("roundtrip_t" + std::to_string(threads));
    const std::vector<std::string> names = {"cities", "rates", "mayors"};

    auto writer = MakeEngineWithSmallLake(threads);
    auto cold = writer->Integrate(names);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto cold_top = writer->DiscoverUnionable("cities", 2);
    ASSERT_TRUE(cold_top.ok());

    auto saved = writer->SaveCatalog(dir);
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    EXPECT_FALSE(saved->incremental);
    EXPECT_EQ(saved->tables_written, 3u);
    // The writer's discovery index was synced, so the save persisted its
    // sketches as-is.
    EXPECT_EQ(saved->columns_resketched, 0u);

    auto reader = MakeEngine(threads);
    auto opened = reader->OpenCatalog(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(opened->tables_loaded, 3u);
    EXPECT_EQ(opened->tables_kept, 0u);
    EXPECT_EQ(opened->columns_resketched, 0u);
    EXPECT_EQ(opened->values_loaded,
              writer->session_dict().NumDistinct());
    EXPECT_EQ(reader->discovery_index().num_tables(), 3u);

    // Warm requests must not re-intern anything: the dictionary was
    // replayed and every column memo was seeded from persisted codes.
    const uint64_t interned_after_open =
        reader->session_dict().stats().values_interned;
    auto warm = reader->Integrate(names);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    auto warm_top = reader->DiscoverUnionable("cities", 2);
    ASSERT_TRUE(warm_top.ok());
    EXPECT_EQ(reader->session_dict().stats().values_interned,
              interned_after_open);

    ExpectTablesIdentical(cold->integrated, warm->integrated);
    ExpectSameCandidates(*cold_top, *warm_top);
  }
}

TEST(CatalogRoundTripTest, GeneratedLakeSurvivesRestart) {
  const std::string dir = FreshDir("genlake");
  LakeOptions opts;
  opts.num_tables = 24;
  opts.num_groups = 4;
  opts.group_size = 3;
  opts.rows_per_table = 30;
  auto lake = GenerateLake(opts);

  auto writer = MakeEngine(2);
  for (const Table& t : lake.tables) {
    ASSERT_TRUE(writer->RegisterTable(t.name(), t).ok());
  }
  auto cold_top = writer->DiscoverUnionable(lake.groups[0][0], 4);
  ASSERT_TRUE(cold_top.ok());
  auto saved = writer->SaveCatalog(dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved->tables_written, lake.tables.size());

  auto reader = MakeEngine(2);
  auto opened = reader->OpenCatalog(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->tables_loaded, lake.tables.size());
  EXPECT_EQ(opened->columns_resketched, 0u);
  EXPECT_GT(opened->mapped_bytes, 0u);

  auto warm_top = reader->DiscoverUnionable(lake.groups[0][0], 4);
  ASSERT_TRUE(warm_top.ok());
  ExpectSameCandidates(*cold_top, *warm_top);
}

/// Opening into an engine that already holds one of the cataloged names
/// keeps the live table and loads the rest.
TEST(CatalogRoundTripTest, LiveTablesWinOverCatalog) {
  const std::string dir = FreshDir("livewins");
  auto writer = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());

  auto reader = MakeEngine(1);
  auto replacement = Table::FromRows("cities", {"City"}, {{S("Oslo")}});
  ASSERT_TRUE(replacement.ok());
  ASSERT_TRUE(
      reader->RegisterTable("cities", std::move(replacement).value()).ok());

  auto opened = reader->OpenCatalog(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->tables_kept, 1u);
  EXPECT_EQ(opened->tables_loaded, 2u);
  auto live = reader->Integrate({"cities"});
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->integrated.NumRows(), 1u);  // the live Oslo table

  // The next save from this engine must rewrite (codes diverged from the
  // file's numbering) and persist the live view, not the stale catalog's.
  auto resaved = reader->SaveCatalog(dir);
  ASSERT_TRUE(resaved.ok()) << resaved.status().ToString();
  auto fresh = MakeEngine(1);
  ASSERT_TRUE(fresh->OpenCatalog(dir).ok());
  auto reloaded = fresh->Integrate({"cities"});
  ASSERT_TRUE(reloaded.ok());
  ExpectTablesIdentical(live->integrated, reloaded->integrated);
}

// ------------------------------------------------------- incremental saves

TEST(CatalogIncrementalTest, SecondSaveAppendsOnly) {
  const std::string dir = FreshDir("incremental");
  auto engine = MakeEngineWithSmallLake(1);
  auto first = engine->SaveCatalog(dir);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->incremental);

  // No mutation in between: everything is reused, nothing is appended.
  auto noop = engine->SaveCatalog(dir);
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop->incremental);
  EXPECT_EQ(noop->tables_reused, 3u);
  EXPECT_EQ(noop->tables_written, 0u);
  EXPECT_EQ(noop->values_appended, 0u);

  auto extra = Table::FromRows("extra", {"City", "Airport"},
                               {{S("Berlin"), S("BER")},
                                {S("Lima"), S("LIM")}});
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(engine->RegisterTable("extra", std::move(extra).value()).ok());
  auto second = engine->SaveCatalog(dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->incremental);
  EXPECT_EQ(second->tables_reused, 3u);
  EXPECT_EQ(second->tables_written, 1u);
  EXPECT_GT(second->values_appended, 0u);   // "BER" / "LIM" are new
  EXPECT_EQ(second->columns_resketched, 0u);

  auto reader = MakeEngine(2);
  auto opened = reader->OpenCatalog(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->tables_loaded, 4u);
  auto a = engine->Integrate({"cities", "extra"});
  auto b = reader->Integrate({"cities", "extra"});
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectTablesIdentical(a->integrated, b->integrated);
}

/// Tampering with a segment file behind the engine's back invalidates the
/// incremental fast path — the save must detect the size mismatch and fall
/// back to a full rewrite instead of appending onto foreign bytes.
TEST(CatalogIncrementalTest, ExternallyGrownSegmentForcesRewrite) {
  const std::string dir = FreshDir("extgrown");
  auto engine = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(engine->SaveCatalog(dir).ok());
  std::ofstream out(SegmentPath(dir, kCatalogValuesStem),
                    std::ios::binary | std::ios::app);
  out << "garbage";
  out.close();

  auto resaved = engine->SaveCatalog(dir);
  ASSERT_TRUE(resaved.ok()) << resaved.status().ToString();
  EXPECT_FALSE(resaved->incremental);
  auto reader = MakeEngine(1);
  EXPECT_TRUE(reader->OpenCatalog(dir).ok());
}

// -------------------------------------------------------- no resurrection

TEST(CatalogUnregisterTest, DroppedTableDoesNotResurrect) {
  const std::string dir = FreshDir("noresurrect");
  auto engine = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(engine->SaveCatalog(dir).ok());

  ASSERT_TRUE(engine->Unregister("rates").ok());
  auto resaved = engine->SaveCatalog(dir);
  ASSERT_TRUE(resaved.ok()) << resaved.status().ToString();
  EXPECT_TRUE(resaved->incremental);
  EXPECT_EQ(resaved->tables_reused, 2u);

  auto reader = MakeEngine(1);
  auto opened = reader->OpenCatalog(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->tables_loaded, 2u);
  EXPECT_EQ(reader->NumTables(), 2u);
  EXPECT_EQ(reader->Integrate({"rates"}).code(), ErrorCode::kNotFound);
  EXPECT_EQ(reader->discovery_index().num_tables(), 2u);
}

TEST(CatalogUnregisterTest, ReRegisteredTableRefreshesFingerprint) {
  const std::string dir = FreshDir("refresh");
  auto engine = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(engine->SaveCatalog(dir).ok());

  ASSERT_TRUE(engine->Unregister("rates").ok());
  auto changed = Table::FromRows("rates", {"City", "VacRate"},
                                 {{S("Berlin"), Value::Double(0.99)}});
  ASSERT_TRUE(changed.ok());
  ASSERT_TRUE(
      engine->RegisterTable("rates", std::move(changed).value()).ok());
  auto resaved = engine->SaveCatalog(dir);
  ASSERT_TRUE(resaved.ok()) << resaved.status().ToString();
  EXPECT_TRUE(resaved->incremental);
  // The changed table's fingerprint no longer matches: it is rewritten,
  // the untouched ones reuse their extents.
  EXPECT_EQ(resaved->tables_written, 1u);
  EXPECT_EQ(resaved->tables_reused, 2u);

  auto reader = MakeEngine(1);
  ASSERT_TRUE(reader->OpenCatalog(dir).ok());
  auto got = reader->Integrate({"rates"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->integrated.NumRows(), 1u);
  EXPECT_TRUE(got->integrated.At(0, 1) == Value::Double(0.99));
}

// ------------------------------------------------ generations & retention

TEST(CatalogGenerationTest, GenerationsAdvanceAndCurrentTracksLatest) {
  const std::string dir = FreshDir("generations");
  auto engine = MakeEngineWithSmallLake(1);

  auto first = engine->SaveCatalog(dir);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->generation, 1u);
  EXPECT_EQ(first->base, 1u);
  auto current = CatalogCurrentGeneration(dir);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 1u);

  auto second = engine->SaveCatalog(dir);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->generation, 2u);
  EXPECT_TRUE(second->incremental);
  EXPECT_EQ(second->base, 1u);  // incremental keeps the base segments
  current = CatalogCurrentGeneration(dir);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 2u);
  EXPECT_EQ(engine->catalog_generation(), 2u);

  // Default retention keeps the newest two generations' manifests.
  EXPECT_TRUE(std::filesystem::exists(ManifestPath(dir, 1)));
  EXPECT_TRUE(std::filesystem::exists(ManifestPath(dir, 2)));

  auto third = engine->SaveCatalog(dir);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->generation, 3u);
  EXPECT_GE(third->generations_removed, 1u);
  EXPECT_FALSE(std::filesystem::exists(ManifestPath(dir, 1)));
  EXPECT_TRUE(std::filesystem::exists(ManifestPath(dir, 2)));
  EXPECT_TRUE(std::filesystem::exists(ManifestPath(dir, 3)));

  // Every committed generation still opens to the same lake.
  auto reader = MakeEngine(1);
  ASSERT_TRUE(reader->OpenCatalog(dir).ok());
  EXPECT_EQ(reader->catalog_generation(), 3u);
  EXPECT_EQ(reader->NumTables(), 3u);
}

TEST(CatalogGenerationTest, RetentionKnobTrimsOldGenerations) {
  const std::string dir = FreshDir("retention");
  auto engine = LakeEngine::Create(
      EngineOptions().SetNumThreads(1).SetCatalogRetainGenerations(1));
  ASSERT_TRUE(engine.ok());
  for (auto& t : SmallLake()) {
    ASSERT_TRUE((*engine)->RegisterTable(t.name(), t).ok());
  }
  ASSERT_TRUE((*engine)->SaveCatalog(dir).ok());
  auto second = (*engine)->SaveCatalog(dir);
  ASSERT_TRUE(second.ok());
  // retain=1: the moment generation 2 commits, generation 1's manifest is
  // unreferenced and removed.
  EXPECT_EQ(second->generations_removed, 1u);
  EXPECT_FALSE(std::filesystem::exists(ManifestPath(dir, 1)));
  EXPECT_TRUE(std::filesystem::exists(ManifestPath(dir, 2)));
  EXPECT_TRUE(MakeEngine(1)->OpenCatalog(dir).ok());
}

TEST(CatalogGenerationTest, RetentionKnobRejectsZero) {
  EXPECT_EQ(EngineOptions().SetCatalogRetainGenerations(0).Validate().code(),
            ErrorCode::kInvalidArgument);
}

TEST(CatalogGenerationTest, FullRewriteLeavesPriorBaseSegmentsIntact) {
  const std::string dir = FreshDir("immutableextents");
  auto writer = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());
  const std::string base1_values = ReadAll(SegmentPath(dir, kCatalogValuesStem));

  // A different engine saving to the same directory cannot reuse extents
  // (its dict numbering is its own) — it must full-rewrite under a NEW
  // base, never in place over segments generation 1 still references.
  auto other = MakeEngineWithSmallLake(1);
  auto resave = other->SaveCatalog(dir);
  ASSERT_TRUE(resave.ok()) << resave.status().ToString();
  EXPECT_FALSE(resave->incremental);
  EXPECT_EQ(resave->generation, 2u);
  EXPECT_EQ(resave->base, 2u);
  EXPECT_TRUE(
      std::filesystem::exists(SegmentPath(dir, kCatalogValuesStem, 2)));
  // Generation 1's segments were untouched while it was retained.
  EXPECT_EQ(ReadAll(SegmentPath(dir, kCatalogValuesStem, 1)), base1_values);
}

TEST(CatalogGenerationTest, MissingCurrentIsTypedError) {
  const std::string dir = FreshDir("nocurrent");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  std::filesystem::remove(PathOf(dir, kCatalogCurrentFile));
  auto reader = MakeEngine(1);
  auto opened = reader->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kIoError);
  EXPECT_EQ(reader->NumTables(), 0u);
  EXPECT_EQ(CatalogCurrentGeneration(dir).code(), ErrorCode::kIoError);
}

TEST(CatalogGenerationTest, GarbageCurrentIsTypedError) {
  const std::string dir = FreshDir("badcurrent");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  for (const char* garbage : {"", "bogus", "LFCUR1 \n", "LFCUR1 12x\n",
                              "LFCUR1 0\n"}) {
    SCOPED_TRACE("CURRENT=\"" + std::string(garbage) + "\"");
    WriteAll(PathOf(dir, kCatalogCurrentFile), garbage);
    EXPECT_EQ(MakeEngine(1)->OpenCatalog(dir).code(), ErrorCode::kIoError);
  }
  // A CURRENT pointing at a generation with no manifest is equally typed.
  WriteAll(PathOf(dir, kCatalogCurrentFile), "LFCUR1 999\n");
  EXPECT_EQ(MakeEngine(1)->OpenCatalog(dir).code(), ErrorCode::kIoError);
}

// ------------------------------------------------------ corruption matrix

TEST(CatalogCorruptionTest, MissingDirectoryIsIoError) {
  auto engine = MakeEngine(1);
  auto opened = engine->OpenCatalog(FreshDir("missing"));
  EXPECT_EQ(opened.code(), ErrorCode::kIoError);
  EXPECT_EQ(engine->catalog_stats().open_failures, 1u);
  // The engine stays fully usable — degrade to a cold rebuild.
  for (auto& t : SmallLake()) {
    EXPECT_TRUE(engine->RegisterTable(t.name(), t).ok());
  }
  EXPECT_TRUE(engine->Integrate({"cities", "rates"}).ok());
}

TEST(CatalogCorruptionTest, TruncatedManifestIsIoError) {
  const std::string dir = FreshDir("truncmanifest");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  std::string manifest = ReadAll(ManifestPath(dir));
  WriteAll(ManifestPath(dir), manifest.substr(0, 10));

  auto opened = MakeEngine(1)->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kIoError);
}

TEST(CatalogCorruptionTest, BadMagicIsInvalidArgument) {
  const std::string dir = FreshDir("badmagic");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  std::string manifest = ReadAll(ManifestPath(dir));
  manifest[0] = 'X';
  FixupManifestChecksum(&manifest);  // semantic error, not integrity error
  WriteAll(ManifestPath(dir), manifest);

  auto opened = MakeEngine(1)->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kInvalidArgument);
}

TEST(CatalogCorruptionTest, FormatVersionSkewIsInvalidArgument) {
  const std::string dir = FreshDir("verskew");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  std::string manifest = ReadAll(ManifestPath(dir));
  const uint32_t future_version = kCatalogFormatVersion + 7;
  std::memcpy(&manifest[sizeof(kCatalogMagic)], &future_version,
              sizeof(future_version));
  FixupManifestChecksum(&manifest);
  WriteAll(ManifestPath(dir), manifest);

  auto opened = MakeEngine(1)->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("version"), std::string::npos);
}

TEST(CatalogCorruptionTest, BitFlipInManifestIsIoError) {
  const std::string dir = FreshDir("bitflip");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  std::string manifest = ReadAll(ManifestPath(dir));
  manifest[manifest.size() / 2] ^= 0x40;  // body flip, checksum NOT fixed
  WriteAll(ManifestPath(dir), manifest);

  auto opened = MakeEngine(1)->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kIoError);
}

TEST(CatalogCorruptionTest, TruncatedSegmentIsIoError) {
  const std::string dir = FreshDir("truncseg");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  for (const char* stem : {kCatalogValuesStem, kCatalogHashesStem,
                           kCatalogTablesStem, kCatalogSketchesStem}) {
    SCOPED_TRACE(stem);
    const std::string path = SegmentPath(dir, stem);
    const std::string bytes = ReadAll(path);
    ASSERT_GT(bytes.size(), 4u);
    WriteAll(path, bytes.substr(0, bytes.size() / 2));

    auto reader = MakeEngine(1);
    auto opened = reader->OpenCatalog(dir);
    EXPECT_EQ(opened.code(), ErrorCode::kIoError);
    // Nothing half-loaded: the registry is untouched after the failure.
    EXPECT_EQ(reader->NumTables(), 0u);
    WriteAll(path, bytes);  // restore for the next round
  }
  // With every segment restored, the catalog opens again.
  EXPECT_TRUE(MakeEngine(1)->OpenCatalog(dir).ok());
}

TEST(CatalogCorruptionTest, SegmentBitFlipIsIoError) {
  const std::string dir = FreshDir("segflip");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());
  std::string bytes = ReadAll(SegmentPath(dir, kCatalogValuesStem));
  bytes[bytes.size() / 3] ^= 0x01;
  WriteAll(SegmentPath(dir, kCatalogValuesStem), bytes);

  auto opened = MakeEngine(1)->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kIoError);
}

/// Bytes past the committed prefix are an aborted append, not corruption:
/// the prefix checksum ignores them and the catalog still opens.
TEST(CatalogCorruptionTest, TrailingGarbageAfterCommittedPrefixIsIgnored) {
  const std::string dir = FreshDir("trailing");
  auto writer = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(writer->SaveCatalog(dir).ok());
  for (const char* stem : {kCatalogValuesStem, kCatalogHashesStem,
                           kCatalogTablesStem, kCatalogSketchesStem}) {
    std::ofstream out(SegmentPath(dir, stem),
                      std::ios::binary | std::ios::app);
    out << "crashed-append-tail";
  }
  auto reader = MakeEngine(1);
  auto opened = reader->OpenCatalog(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->tables_loaded, 3u);
}

TEST(CatalogCorruptionTest, DiscoveryParamMismatchIsInvalidArgument) {
  const std::string dir = FreshDir("parammismatch");
  ASSERT_TRUE(MakeEngineWithSmallLake(1)->SaveCatalog(dir).ok());

  EngineOptions opts;
  opts.discovery.SetSignatureSize(32).SetBanding(8, 4);
  auto reader = LakeEngine::Create(opts);
  ASSERT_TRUE(reader.ok());
  auto opened = (*reader)->OpenCatalog(dir);
  EXPECT_EQ(opened.code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------- golden hashes

/// Locked constants: the catalog persists ValueDict::HashOf side tables,
/// MinHash signatures, and LSH band keys as raw bytes, so these functions
/// changing silently would make every existing catalog decode into a
/// *different* dictionary (equal values under different codes — wrong FD
/// joins, wrong sketches). A change here must bump kCatalogFormatVersion.
TEST(CatalogGoldenTest, ValueHashesAreStable) {
  EXPECT_EQ(Value::String("alice").Hash(), 17663532886374439575ull);
  EXPECT_EQ(Value::Int(42).Hash(), 1564134752356013387ull);
  EXPECT_EQ(Value::Double(2.5).Hash(), 11233389734505888455ull);
  EXPECT_EQ(Value::Bool(true).Hash(), 3451009034337926933ull);
  // ±0.0 must stay collapsed: both encodings intern to one dict entry.
  EXPECT_EQ(Value::Double(-0.0).Hash(), 16525467367716908143ull);
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());
}

TEST(CatalogGoldenTest, DictHashOfMatchesValueHash) {
  ValueDict dict;
  for (const Value& v :
       {Value::String("alice"), Value::Int(42), Value::Double(2.5)}) {
    const uint32_t code = dict.Intern(v);
    EXPECT_EQ(dict.HashOf(code), v.Hash());
  }
}

TEST(CatalogGoldenTest, MinHashSignatureBytesAreStable) {
  std::vector<Value> vals;
  for (int i = 0; i < 16; ++i) vals.push_back(S("v" + std::to_string(i)));
  vals.push_back(Value::Int(7));
  vals.push_back(Value::Null());
  SketchScratch scratch;
  ColumnSketch s =
      BuildColumnSketchFromValues("col", vals, SketchOptions(), &scratch);
  ASSERT_EQ(s.signature.size(), 64u);
  EXPECT_EQ(s.signature[0], 503156245670146792ull);
  EXPECT_EQ(s.signature[1], 239188940156540417ull);
  EXPECT_EQ(s.signature[2], 433627304758821863ull);
  EXPECT_EQ(s.signature[3], 160883120787117679ull);
}

TEST(CatalogGoldenTest, LshBandKeysAreStable) {
  std::vector<Value> vals;
  for (int i = 0; i < 16; ++i) vals.push_back(S("v" + std::to_string(i)));
  vals.push_back(Value::Int(7));
  vals.push_back(Value::Null());
  SketchScratch scratch;
  ColumnSketch s =
      BuildColumnSketchFromValues("col", vals, SketchOptions(), &scratch);
  LshIndex lsh(16, 4);
  std::vector<uint64_t> keys;
  lsh.ComputeBandKeys(s.signature, &keys);
  ASSERT_EQ(keys.size(), 16u);
  EXPECT_EQ(keys[0], 13941073475411058532ull);
  EXPECT_EQ(keys[15], 17224553595041193297ull);
  // AddWithKeys(precomputed) must land in exactly the buckets Add(signature)
  // would — the warm-load LSH rebuild relies on it.
  LshIndex a(16, 4), b(16, 4);
  a.Add(1, s.signature);
  b.AddWithKeys(1, keys);
  EXPECT_EQ(a.Query(s.signature), b.Query(s.signature));
}

// ----------------------------------------------------------- fingerprints

TEST(CatalogFingerprintTest, ContentKeyedNotCodeKeyed) {
  auto lake = SmallLake();
  // Two dictionaries interning in different orders assign different codes,
  // but the fingerprint hangs off content hashes — it must agree.
  SessionDict forward, backward;
  auto warm = Table::FromRows("warm", {"City"},
                              {{S("Quito")}, {S("Berlin")}, {S("Xi'an")}});
  ASSERT_TRUE(warm.ok());
  for (size_t c = 0; c < warm->NumColumns(); ++c) {
    backward.ColumnCodes(*warm, c);  // skew backward's code numbering
  }
  const uint64_t fp_fwd = CatalogTableFingerprint(lake[0], &forward);
  const uint64_t fp_bwd = CatalogTableFingerprint(lake[0], &backward);
  EXPECT_EQ(fp_fwd, fp_bwd);
  // Different content ⇒ different fingerprint.
  EXPECT_NE(CatalogTableFingerprint(lake[0], &forward),
            CatalogTableFingerprint(lake[1], &forward));
}

// ------------------------------------------------------------- peak RSS

TEST(CatalogStatsTest, IntegrateReportsPeakRss) {
  auto engine = MakeEngineWithSmallLake(1);
  auto result = engine->Integrate({"cities", "rates"});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->report.fd_stats.peak_rss_bytes, 0u);
  // getrusage's high-water mark is monotonic within a process.
  auto again = engine->Integrate({"cities", "mayors"});
  ASSERT_TRUE(again.ok());
  EXPECT_GE(again->report.fd_stats.peak_rss_bytes,
            result->report.fd_stats.peak_rss_bytes);
}

TEST(CatalogStatsTest, EngineAccumulatesCatalogCounters) {
  const std::string dir = FreshDir("stats");
  auto engine = MakeEngineWithSmallLake(1);
  ASSERT_TRUE(engine->SaveCatalog(dir).ok());
  ASSERT_TRUE(engine->SaveCatalog(dir).ok());
  const CatalogStats s = engine->catalog_stats();
  EXPECT_EQ(s.saves, 2u);
  EXPECT_EQ(s.tables_written, 3u);  // second save reused everything
  EXPECT_EQ(s.tables_reused, 3u);
  EXPECT_GT(s.bytes_written, 0u);
  EXPECT_EQ(s.generation, 2u);

  auto reader = MakeEngine(1);
  ASSERT_TRUE(reader->OpenCatalog(dir).ok());
  const CatalogStats r = reader->catalog_stats();
  EXPECT_EQ(r.opens, 1u);
  EXPECT_EQ(r.open_failures, 0u);
  EXPECT_EQ(r.tables_loaded, 3u);
  EXPECT_GT(r.mmap_bytes, 0u);
  EXPECT_EQ(r.generation, 2u);
  EXPECT_EQ(r.refreshes, 0u);
}

}  // namespace
}  // namespace lakefuzz
