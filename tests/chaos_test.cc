// Seeded chaos harness for the request lifecycle (robustness tentpole).
//
// Runs hundreds of full discover → integrate pipelines against one engine
// while randomly firing deadlines, cancellations, resource budgets, both
// budget policies, and — in LAKEFUZZ_FAULT_POINTS builds — injected faults
// at the fd/build, fd/task, sink/write seams. The engine must stay
// consistent throughout: every request returns one of the accepted
// lifecycle codes, the registry never changes shape, and a clean request
// after any amount of chaos is byte-identical to a fresh engine's answer.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "core/engine.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

Value S(const std::string& s) { return Value::String(s); }

/// A small lake with overlapping schemas and a few fuzzy twins, cheap
/// enough to integrate hundreds of times under sanitizers.
std::vector<Table> ChaosLake() {
  std::vector<Table> tables;
  auto t0 = Table::FromRows("c0", {"City", "Country"},
                            {{S("Berlinn"), S("Germany")},
                             {S("Toronto"), S("Canada")},
                             {S("Lima"), S("Peru")}});
  auto t1 = Table::FromRows("c1", {"City", "VacRate"},
                            {{S("Berlin"), S("63%")},
                             {S("Lima"), S("71%")},
                             {S("Quito"), S("55%")}});
  auto t2 = Table::FromRows("c2", {"City", "Mayor"},
                            {{S("Toronto"), S("Olivia")},
                             {S("Quito"), S("Pabel")}});
  EXPECT_TRUE(t0.ok() && t1.ok() && t2.ok());
  tables.push_back(std::move(t0).value());
  tables.push_back(std::move(t1).value());
  tables.push_back(std::move(t2).value());
  return tables;
}

const std::vector<std::string>& LakeNames() {
  static const std::vector<std::string> names = {"c0", "c1", "c2"};
  return names;
}

Result<std::unique_ptr<LakeEngine>> MakeChaosEngine() {
  auto engine = LakeEngine::Create(EngineOptions().SetNumThreads(2));
  if (!engine.ok()) return engine;
  for (auto& t : ChaosLake()) {
    LAKEFUZZ_RETURN_IF_ERROR((*engine)->RegisterTable(t.name(), t));
  }
  return engine;
}

/// The clean-request answer used for byte-identity checks.
RequestOptions CleanRequest() {
  RequestOptions req;
  req.holistic_alignment = false;
  return req;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      ASSERT_TRUE(a.At(r, c) == b.At(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

/// Sink that swallows everything (chaos requests don't inspect output).
class NullSink : public RowSink {
 public:
  Status OnBatch(const std::vector<FdResultTuple>&) override {
    return Status::OK();
  }
};

bool AcceptedLifecycleCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
    case ErrorCode::kCancelled:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kInternal:  // injected faults surface as kInternal
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, EngineStaysConsistentUnderRandomizedLifecycleStress) {
  constexpr int kIterations = 250;
  constexpr uint64_t kMasterSeed = 0xC4A05;

  auto engine = MakeChaosEngine();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Warm the discovery index once so chaos queries never race a cold build
  // into kNotFound (the registry is never mutated below).
  ASSERT_TRUE((*engine)->DiscoverUnionable("c0", 2).ok());

  // Fresh-engine reference for the byte-identity invariant.
  auto reference_engine = MakeChaosEngine();
  ASSERT_TRUE(reference_engine.ok());
  auto reference = (*reference_engine)->Integrate(LakeNames(), CleanRequest());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Rng rng(kMasterSeed);
  int ok_count = 0, stopped_count = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
#ifdef LAKEFUZZ_FAULT_POINTS
    if (rng.Bernoulli(0.5)) {
      FaultInjector::Instance().ArmAll(kMasterSeed ^ static_cast<uint64_t>(iter),
                                       rng.UniformReal(0.02, 0.3));
    } else {
      FaultInjector::Instance().Disarm();
    }
#endif

    RequestOptions req;
    req.holistic_alignment = false;
    req.fuzzy = rng.Bernoulli(0.8);
    req.budget_policy =
        rng.Bernoulli(0.5) ? BudgetPolicy::kTruncate : BudgetPolicy::kFail;
    if (rng.Bernoulli(0.35)) {
      // Microsecond-scale deadlines land at every stage of the pipeline.
      req.deadline = Deadline::After(
          std::chrono::microseconds(rng.UniformInt(1, 3000)));
    }
    if (rng.Bernoulli(0.25)) req.budget.max_fd_nodes = rng.UniformInt(1, 64);
    if (rng.Bernoulli(0.25)) {
      req.budget.max_result_tuples = rng.UniformInt(1, 8);
    }
    if (rng.Bernoulli(0.1)) {
      req.budget.max_scratch_bytes = rng.UniformInt(1, 1 << 20);
    }
    // Telemetry rides through the chaos: half the requests carry a tracer
    // (occasionally one with a tiny span cap, to exercise the dropped-span
    // path), proving spans stay balanced and TSan-clean across deadlines,
    // cancellations, and injected faults.
    std::unique_ptr<Tracer> tracer;
    if (rng.Bernoulli(0.5)) {
      TraceOptions topts;
      topts.request_id = static_cast<uint64_t>(iter) + 1;
      if (rng.Bernoulli(0.2)) topts.max_spans = 4;
      tracer = std::make_unique<Tracer>(topts);
      req.tracer = tracer.get();
    }

    const uint64_t cancel_mode = rng.Uniform(3);
    if (cancel_mode > 0) {
      req.cancel = CancelToken::Create();
      if (cancel_mode == 1) {
        req.cancel.Cancel();  // pre-fired
      } else {
        // Fired from the progress callback at a random stage boundary.
        static const Stage kStages[] = {
            Stage::kDiscover, Stage::kAlign,       Stage::kMatch,
            Stage::kFdBuild,  Stage::kFdEnumerate, Stage::kFdSubsume,
            Stage::kEmit};
        const Stage trigger = kStages[rng.Uniform(7)];
        CancelToken token = req.cancel;
        req.progress = [token, trigger](const ProgressEvent& e) mutable {
          if (e.stage == trigger) token.Cancel();
        };
      }
    }

    Status outcome = Status::OK();
    NullSink sink;
    switch (rng.Uniform(4)) {
      case 0:
        outcome = (*engine)->Integrate(LakeNames(), req).status();
        break;
      case 1:
        req.batch_rows = static_cast<size_t>(rng.UniformInt(1, 4));
        outcome = (*engine)->IntegrateToSink(LakeNames(), &sink, req).status();
        break;
      case 2:
        outcome = (*engine)
                      ->DiscoverAndIntegrate(
                          "c0", static_cast<size_t>(rng.UniformInt(1, 2)),
                          &sink, req)
                      .status();
        break;
      default: {
        RequestContext dctx;
        dctx.cancel = req.cancel;
        dctx.deadline = req.deadline;
        dctx.policy = req.budget_policy;
        dctx.tracer = tracer.get();
        outcome =
            (*engine)
                ->DiscoverUnionable(
                    "c1", static_cast<size_t>(rng.UniformInt(1, 2)), dctx)
                .status();
        break;
      }
    }
    ASSERT_TRUE(AcceptedLifecycleCode(outcome.code()))
        << "iteration " << iter << ": " << outcome.ToString();
    outcome.ok() ? ++ok_count : ++stopped_count;

    if (tracer != nullptr) {
      // Whatever the outcome, the trace tree must be well-formed: every
      // span closed (RAII unwinds through error paths) and the exports
      // renderable.
      for (const Span& span : tracer->Spans()) {
        ASSERT_FALSE(span.open)
            << "iteration " << iter << ": span '" << span.name
            << "' left open after " << outcome.ToString();
      }
      ASSERT_NE(tracer->ToChromeJson().find("traceEvents"),
                std::string::npos);
      (void)tracer->FlameSummary();
    }

    // Consistency checkpoint: chaos must never corrupt the session. A clean
    // request right after any failure mode answers exactly like a fresh
    // engine, and the registry keeps its shape.
    if ((iter + 1) % 50 == 0 || iter + 1 == kIterations) {
      FaultInjector::Instance().Disarm();
      ASSERT_EQ((*engine)->NumTables(), LakeNames().size());
      auto clean = (*engine)->Integrate(LakeNames(), CleanRequest());
      ASSERT_TRUE(clean.ok())
          << "iteration " << iter << ": " << clean.status().ToString();
      ExpectTablesIdentical(clean->integrated, reference->integrated);
    }
  }
  FaultInjector::Instance().Disarm();
  // The mix must actually exercise both halves of the lifecycle.
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(stopped_count, 0);

  // Admission accounting never leaks slots: after the storm the engine
  // still serves an unbounded stream of clean requests.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*engine)->Integrate(LakeNames(), CleanRequest()).ok());
  }
}

#ifdef LAKEFUZZ_FAULT_POINTS
TEST(ChaosTest, DeterministicFaultPointsFireOnce) {
  auto engine = MakeChaosEngine();
  ASSERT_TRUE(engine.ok());

  FaultInjector::Instance().ArmPoint("fd/build", 0);
  auto faulted = (*engine)->Integrate(LakeNames(), CleanRequest());
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.code(), ErrorCode::kInternal);
  EXPECT_NE(faulted.status().message().find("fd/build"), std::string::npos);

  // One-shot: the next request sails through without disarming.
  auto after = (*engine)->Integrate(LakeNames(), CleanRequest());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  FaultInjector::Instance().Disarm();
}

TEST(ChaosTest, CatalogWriteFsyncRenameFaultsLeaveOldCatalogIntact) {
  // Every distinct save-path IO seam — buffered write, fsync/close, and the
  // rename that would commit — fails the re-save the same way: typed error,
  // the committed generation on disk untouched, the writer unpoisoned.
  for (const char* point :
       {"catalog/write", "catalog/fsync", "catalog/rename"}) {
    SCOPED_TRACE(point);
    const std::string dir = testing::TempDir() + "/lakefuzz_chaos_cat_" +
                            std::string(point).substr(8);
    std::filesystem::remove_all(dir);
    auto engine = MakeChaosEngine();
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->SaveCatalog(dir).ok());

    // Mutate the lake, then fail the re-save at the armed seam. The commit
    // point is the CURRENT rename, so the catalog on disk must still be
    // the first save, loadable in full.
    ASSERT_TRUE((*engine)->Unregister("c2").ok());
    FaultInjector::Instance().ArmPoint(point, 0);
    auto resave = (*engine)->SaveCatalog(dir);
    FaultInjector::Instance().Disarm();
    ASSERT_FALSE(resave.ok());
    EXPECT_EQ(resave.code(), ErrorCode::kInternal);
    EXPECT_NE(resave.status().message().find(point), std::string::npos);
    EXPECT_EQ((*engine)->catalog_stats().saves, 1u);

    auto reader = LakeEngine::Create(EngineOptions().SetNumThreads(2));
    ASSERT_TRUE(reader.ok());
    auto opened = (*reader)->OpenCatalog(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(opened->tables_loaded, 3u);  // pre-fault snapshot, c2 included
    EXPECT_EQ(opened->generation, 1u);

    // The writer engine is not poisoned: a clean save now succeeds and
    // reflects the post-unregister lake.
    ASSERT_TRUE((*engine)->SaveCatalog(dir).ok());
    auto reader2 = LakeEngine::Create(EngineOptions().SetNumThreads(2));
    ASSERT_TRUE(reader2.ok());
    auto reopened = (*reader2)->OpenCatalog(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->tables_loaded, 2u);
  }
}

TEST(ChaosTest, CatalogReadAndMmapFaultsFailTypedThenRecover) {
  const std::string dir = testing::TempDir() + "/lakefuzz_chaos_cat_read";
  std::filesystem::remove_all(dir);
  {
    auto writer = MakeChaosEngine();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->SaveCatalog(dir).ok());
  }
  for (const char* point : {"catalog/read", "catalog/mmap"}) {
    SCOPED_TRACE(point);
    auto engine = LakeEngine::Create(EngineOptions().SetNumThreads(2));
    ASSERT_TRUE(engine.ok());
    FaultInjector::Instance().ArmPoint(point, 0);
    auto faulted = (*engine)->OpenCatalog(dir);
    FaultInjector::Instance().Disarm();
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.code(), ErrorCode::kInternal);
    EXPECT_EQ((*engine)->catalog_stats().open_failures, 1u);
    // Nothing half-loaded; the same engine opens cleanly once disarmed.
    EXPECT_EQ((*engine)->NumTables(), 0u);
    auto opened = (*engine)->OpenCatalog(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(opened->tables_loaded, 3u);
    ASSERT_TRUE((*engine)->Integrate(LakeNames(), CleanRequest()).ok());
  }
}

TEST(ChaosTest, CatalogSurvivesSeededFaultStorm) {
  constexpr uint64_t kSeed = 0xCA7A106;
  const std::string dir = testing::TempDir() + "/lakefuzz_chaos_cat_storm";
  std::filesystem::remove_all(dir);
  auto engine = MakeChaosEngine();
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->SaveCatalog(dir).ok());

  Rng rng(kSeed);
  int failures = 0;
  for (int iter = 0; iter < 40; ++iter) {
    FaultInjector::Instance().ArmAll(kSeed ^ static_cast<uint64_t>(iter),
                                     rng.UniformReal(0.05, 0.5));
    Status outcome = rng.Bernoulli(0.5)
                         ? (*engine)->SaveCatalog(dir).status()
                         : LakeEngine::Create(EngineOptions().SetNumThreads(2))
                               .value()
                               ->OpenCatalog(dir)
                               .status();
    FaultInjector::Instance().Disarm();
    ASSERT_TRUE(outcome.ok() || outcome.code() == ErrorCode::kInternal ||
                outcome.code() == ErrorCode::kIoError)
        << "iteration " << iter << ": " << outcome.ToString();
    if (!outcome.ok()) ++failures;
  }
  EXPECT_GT(failures, 0);  // the storm must actually bite

  // After any storm, a clean save + open round-trips the lake exactly.
  ASSERT_TRUE((*engine)->SaveCatalog(dir).ok());
  auto reader = LakeEngine::Create(EngineOptions().SetNumThreads(2));
  ASSERT_TRUE(reader.ok());
  auto opened = (*reader)->OpenCatalog(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->tables_loaded, 3u);
  EXPECT_EQ(opened->columns_resketched, 0u);
  auto a = (*engine)->Integrate(LakeNames(), CleanRequest());
  auto b = (*reader)->Integrate(LakeNames(), CleanRequest());
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectTablesIdentical(a->integrated, b->integrated);
}

TEST(ChaosTest, SinkWriteFaultAbortsStreamNotEngine) {
  auto engine = MakeChaosEngine();
  ASSERT_TRUE(engine.ok());
  NullSink sink;
  FaultInjector::Instance().ArmPoint("sink/write", 0);
  auto faulted = (*engine)->IntegrateToSink(LakeNames(), &sink, CleanRequest());
  FaultInjector::Instance().Disarm();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.code(), ErrorCode::kInternal);

  auto reference_engine = MakeChaosEngine();
  ASSERT_TRUE(reference_engine.ok());
  auto reference =
      (*reference_engine)->Integrate(LakeNames(), CleanRequest());
  auto clean = (*engine)->Integrate(LakeNames(), CleanRequest());
  ASSERT_TRUE(reference.ok() && clean.ok());
  ExpectTablesIdentical(clean->integrated, reference->integrated);
}
#endif  // LAKEFUZZ_FAULT_POINTS

}  // namespace
}  // namespace lakefuzz
