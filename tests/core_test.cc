// Tests for src/core: blocking, the ValueMatcher (paper Sec 2.2, Fig. 2),
// and the Fuzzy Full Disjunction pipeline (paper Fig. 1).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/blocking.h"
#include "core/fuzzy_fd.h"
#include "core/value_matcher.h"
#include "embedding/knowledge_base.h"
#include "embedding/model_zoo.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

ValueMatcherOptions MistralOptions() {
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral, 256);
  return opts;
}

/// Looks up the group containing (col, value); returns nullptr if absent.
const ValueGroup* GroupOf(const ValueMatchResult& result, size_t col,
                          const std::string& value) {
  for (const auto& g : result.groups) {
    for (const auto& m : g.members) {
      if (m.first == col && m.second == value) return &g;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- Blocking

TEST(BlockingTest, SurfacePairsShareNgrams) {
  BlockingOptions opts;
  auto pairs = GenerateCandidates({"Berlin", "Toronto"},
                                  {"Berlinn", "Madrid"}, opts);
  // (Berlin, Berlinn) must be a candidate; (Toronto, Madrid) must not.
  EXPECT_NE(std::find(pairs.begin(), pairs.end(),
                      std::make_pair(size_t{0}, size_t{0})),
            pairs.end());
  EXPECT_EQ(std::find(pairs.begin(), pairs.end(),
                      std::make_pair(size_t{1}, size_t{1})),
            pairs.end());
}

TEST(BlockingTest, KnowledgeBaseBridgesAliases) {
  BlockingOptions no_kb;
  auto without = GenerateCandidates({"Canada"}, {"CA"}, no_kb);
  EXPECT_TRUE(without.empty());  // no shared 3-gram

  BlockingOptions with_kb;
  with_kb.knowledge_base =
      std::make_shared<KnowledgeBase>(KnowledgeBase::BuiltIn());
  auto with = GenerateCandidates({"Canada"}, {"CA"}, with_kb);
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(with[0], std::make_pair(size_t{0}, size_t{0}));
}

TEST(BlockingTest, InitialsKeyBridgesAcronyms) {
  BlockingOptions opts;
  auto pairs = GenerateCandidates({"United States"}, {"US"}, opts);
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(BlockingTest, DeduplicatedAndSorted) {
  BlockingOptions opts;
  auto pairs =
      GenerateCandidates({"Berlin", "Berlin City"}, {"Berlinn"}, opts);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i - 1], pairs[i]);
  }
}

// ---------------------------------------------------------------- ValueMatcher

TEST(ValueMatcherTest, RequiresDistanceSource) {
  ValueMatcherOptions opts;  // neither model nor string_distance
  ValueMatcher matcher(opts);
  EXPECT_FALSE(matcher.MatchColumns({{"a"}}).ok());
}

TEST(ValueMatcherTest, RejectsDuplicateValuesInColumn) {
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({{"x", "x"}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueMatcherTest, EmptyInputYieldsNoGroups) {
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST(ValueMatcherTest, SingleColumnAllSingletons) {
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({{"Berlin", "Toronto"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 2u);
  for (const auto& g : r->groups) {
    EXPECT_EQ(g.members.size(), 1u);
    EXPECT_EQ(g.representative, g.members[0].second);
  }
}

TEST(ValueMatcherTest, PaperFig2CityWalkthrough) {
  // Columns from Fig. 2: T1.City, T2.City, T3.City.
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({
      {"Berlinn", "Toronto", "Barcelona", "New Delhi"},
      {"Toronto", "Boston", "Berlin", "Barcelona"},
      {"Berlin", "barcelona", "Boston"},
  });
  ASSERT_TRUE(r.ok());
  // Final combined column: Berlin, Toronto, Barcelona, New Delhi, Boston.
  EXPECT_EQ(r->groups.size(), 5u);

  const ValueGroup* berlin = GroupOf(*r, 0, "Berlinn");
  ASSERT_NE(berlin, nullptr);
  EXPECT_EQ(berlin->members.size(), 3u);
  // Berlin appears twice (T2, T3), Berlinn once → representative Berlin.
  EXPECT_EQ(berlin->representative, "Berlin");

  const ValueGroup* barcelona = GroupOf(*r, 0, "Barcelona");
  ASSERT_NE(barcelona, nullptr);
  EXPECT_EQ(barcelona->members.size(), 3u);  // incl. lowercase barcelona
  EXPECT_EQ(barcelona->representative, "Barcelona");

  const ValueGroup* delhi = GroupOf(*r, 0, "New Delhi");
  ASSERT_NE(delhi, nullptr);
  EXPECT_EQ(delhi->members.size(), 1u);

  const ValueGroup* boston = GroupOf(*r, 1, "Boston");
  ASSERT_NE(boston, nullptr);
  EXPECT_EQ(boston->members.size(), 2u);  // T2 + T3
}

TEST(ValueMatcherTest, PaperExample3CountryColumns) {
  // Country columns of T1/T2: codes match full names through the KB; the
  // bipartite matcher must not pair India with US (distance above θ).
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({
      {"Germany", "Canada", "Spain", "India"},
      {"CA", "US", "DE", "ES"},
  });
  ASSERT_TRUE(r.ok());
  const ValueGroup* germany = GroupOf(*r, 0, "Germany");
  ASSERT_NE(germany, nullptr);
  ASSERT_EQ(germany->members.size(), 2u);
  EXPECT_EQ(germany->members[1].second, "DE");

  const ValueGroup* canada = GroupOf(*r, 0, "Canada");
  ASSERT_NE(canada, nullptr);
  EXPECT_EQ(canada->members.size(), 2u);

  // India and US stay singletons.
  EXPECT_EQ(GroupOf(*r, 0, "India")->members.size(), 1u);
  EXPECT_EQ(GroupOf(*r, 1, "US")->members.size(), 1u);
}

TEST(ValueMatcherTest, TieBreakPrefersEarlierColumn) {
  // "Madrid" vs "Madrid" exact: both frequency 1... use distinct surfaces:
  // Berlim (col 0) vs Berlin (col 1), each frequency 1 → tie → col 0 wins.
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({{"Berlim"}, {"Berlin"}});
  ASSERT_TRUE(r.ok());
  const ValueGroup* g = GroupOf(*r, 0, "Berlim");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->members.size(), 2u);
  EXPECT_EQ(g->representative, "Berlim");
}

TEST(ValueMatcherTest, FrequencyBeatsColumnOrder) {
  // "Torontoo" (col 0) vs "Toronto" in cols 1 and 2 → rep = Toronto.
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({{"Torontoo"}, {"Toronto"}, {"Toronto"}});
  ASSERT_TRUE(r.ok());
  const ValueGroup* g = GroupOf(*r, 0, "Torontoo");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->members.size(), 3u);
  EXPECT_EQ(g->representative, "Toronto");
}

TEST(ValueMatcherTest, ThresholdGovernsMatching) {
  ValueMatcherOptions strict = MistralOptions();
  strict.threshold = 0.05;  // nearly nothing passes
  auto r1 = ValueMatcher(strict).MatchColumns({{"Berlinn"}, {"Berlin"}});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->groups.size(), 2u);  // typo pair not matched

  ValueMatcherOptions loose = MistralOptions();
  loose.threshold = 0.7;
  auto r2 = ValueMatcher(loose).MatchColumns({{"Berlinn"}, {"Berlin"}});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->groups.size(), 1u);
}

TEST(ValueMatcherTest, ExactPrepassShortCircuitsAssignment) {
  ValueMatcherOptions opts = MistralOptions();
  auto r = ValueMatcher(opts).MatchColumns(
      {{"Berlin", "Toronto"}, {"Toronto", "Berlin"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 2u);
  EXPECT_EQ(r->stats.exact_matches, 2u);
  EXPECT_EQ(r->stats.assignment_matches, 0u);
  EXPECT_EQ(r->stats.cost_evaluations, 0u);
}

TEST(ValueMatcherTest, PrepassDisabledUsesAssignment) {
  ValueMatcherOptions opts = MistralOptions();
  opts.exact_match_prepass = false;
  auto r = ValueMatcher(opts).MatchColumns(
      {{"Berlin", "Toronto"}, {"Toronto", "Berlin"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 2u);
  EXPECT_EQ(r->stats.exact_matches, 0u);
  EXPECT_EQ(r->stats.assignment_matches, 2u);
}

TEST(ValueMatcherTest, SparseModeAgreesWithDense) {
  ValueMatcherOptions dense = MistralOptions();
  ValueMatcherOptions sparse = MistralOptions();
  sparse.max_dense_cells = 0;  // force blocking path
  sparse.blocking.knowledge_base =
      std::make_shared<KnowledgeBase>(KnowledgeBase::BuiltIn());
  std::vector<std::vector<std::string>> columns = {
      {"Berlinn", "Toronto", "Barcelona", "New Delhi"},
      {"Toronto", "Boston", "Berlin", "Barcelona"},
  };
  auto rd = ValueMatcher(dense).MatchColumns(columns);
  auto rs = ValueMatcher(sparse).MatchColumns(columns);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rd->groups.size(), rs->groups.size());
  EXPECT_EQ(rs->stats.sparse_solves, 1u);
  EXPECT_EQ(rs->stats.dense_solves, 0u);
}

TEST(ValueMatcherTest, StringDistanceModeWorks) {
  ValueMatcherOptions opts;
  opts.string_distance = MakeStringDistance(StringDistanceKind::kJaroWinkler);
  opts.threshold = 0.25;
  // Jaro-Winkler rates cross pairs (Madrid/Berlin ≈ 0.44) well enough that
  // the unmasked optimum prefers two doomed pairs over one great + one
  // terrible; mask so the sub-θ structure drives the assignment here.
  opts.mask_before_solve = true;
  auto r = ValueMatcher(opts).MatchColumns({{"Berlinn", "Madrid"},
                                            {"Berlin", "Lisbon"}});
  ASSERT_TRUE(r.ok());
  const ValueGroup* g = GroupOf(*r, 0, "Berlinn");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->members.size(), 2u);
  EXPECT_EQ(GroupOf(*r, 1, "Lisbon")->members.size(), 1u);
}

TEST(ValueMatcherTest, CrossColumnPairsEnumeration) {
  ValueMatcher matcher(MistralOptions());
  auto r = matcher.MatchColumns({{"Berlinn"}, {"Berlin"}, {"Berlin "}});
  ASSERT_TRUE(r.ok());
  auto pairs = CrossColumnPairs(*r);
  // One group of 3 members → 3 cross-column pairs.
  EXPECT_EQ(pairs.size(), 3u);
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(a.first, b.first);
  }
}

// ---------------------------------------------------------------- FuzzyFD

std::vector<Table> Fig1Tables() {
  auto t1 = Table::FromRows(
      "T1", {"City", "Country"},
      {{S("Berlinn"), S("Germany")},
       {S("Toronto"), S("Canada")},
       {S("Barcelona"), S("Spain")},
       {S("New Delhi"), S("India")}});
  auto t2 = Table::FromRows(
      "T2", {"Country", "City", "VacRate"},
      {{S("CA"), S("Toronto"), S("83%")},
       {S("US"), S("Boston"), S("62%")},
       {S("DE"), S("Berlin"), S("63%")},
       {S("ES"), S("Barcelona"), S("82%")}});
  auto t3 = Table::FromRows(
      "T3", {"City", "TotalCases", "DeathRate"},
      {{S("Berlin"), S("1.4M"), S("147")},
       {S("barcelona"), S("2.68M"), S("275")},
       {S("Boston"), S("263K"), S("335")}});
  EXPECT_TRUE(t1.ok() && t2.ok() && t3.ok());
  return {std::move(t1).value(), std::move(t2).value(), std::move(t3).value()};
}

FuzzyFdOptions PaperPipelineOptions() {
  FuzzyFdOptions opts;
  opts.matcher = MistralOptions();
  return opts;
}

TEST(FuzzyFdTest, Fig1FuzzyIntegrationProducesFiveTuples) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFullDisjunction fuzzy(PaperPipelineOptions());
  FuzzyFdReport report;
  auto result = fuzzy.RunToTuples(tables, *aligned, &report);
  ASSERT_TRUE(result.ok());
  // Paper Fig. 1 Fuzzy FD(T1,T2,T3): f10..f14 — five tuples.
  ASSERT_EQ(result->tuples.size(), 5u);

  std::set<std::vector<uint32_t>> tid_sets;
  for (const auto& t : result->tuples) tid_sets.insert(t.tids);
  EXPECT_TRUE(tid_sets.count({0, 6, 8}));   // Berlinn+Berlin+Berlin
  EXPECT_TRUE(tid_sets.count({1, 4}));      // Toronto
  EXPECT_TRUE(tid_sets.count({2, 7, 9}));   // Barcelona ×3
  EXPECT_TRUE(tid_sets.count({3}));         // New Delhi alone
  EXPECT_TRUE(tid_sets.count({5, 10}));     // Boston
  EXPECT_GT(report.values_rewritten, 0u);
  EXPECT_EQ(report.aligned_sets_matched, 2u);  // City and Country
}

TEST(FuzzyFdTest, Fig1RepresentativeValuesFollowPaperRule) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFullDisjunction fuzzy(PaperPipelineOptions());
  auto result = fuzzy.RunToTuples(tables, *aligned);
  ASSERT_TRUE(result.ok());
  for (const auto& t : result->tuples) {
    if (t.tids == std::vector<uint32_t>{0, 6, 8}) {
      EXPECT_EQ(t.values[0], S("Berlin"));    // freq 2 beats Berlinn
      // Germany vs DE: tie (1 each) → earlier table (T1) wins.
      EXPECT_EQ(t.values[1], S("Germany"));
      EXPECT_EQ(t.values[2], S("63%"));
      EXPECT_EQ(t.values[3], S("1.4M"));
      EXPECT_EQ(t.values[4], S("147"));
    }
    if (t.tids == std::vector<uint32_t>{1, 4}) {
      EXPECT_EQ(t.values[1], S("Canada"));  // tie → T1's value
      EXPECT_EQ(t.values[2], S("83%"));
    }
  }
}

TEST(FuzzyFdTest, RewriteTablesMakesValuesConsistent) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFullDisjunction fuzzy(PaperPipelineOptions());
  FuzzyFdReport report;
  auto rewritten = fuzzy.RewriteTables(tables, *aligned, &report);
  ASSERT_TRUE(rewritten.ok());
  // T1's Berlinn must now read Berlin; T3's barcelona must read Barcelona.
  EXPECT_EQ((*rewritten)[0].At(0, 0), S("Berlin"));
  EXPECT_EQ((*rewritten)[2].At(1, 0), S("Barcelona"));
  // T2's Country codes rewritten to the full names (earlier-table reps).
  EXPECT_EQ((*rewritten)[1].At(0, 0), S("Canada"));
  EXPECT_EQ((*rewritten)[1].At(2, 0), S("Germany"));
  // Untouched cells stay identical.
  EXPECT_EQ((*rewritten)[1].At(0, 2), S("83%"));
}

TEST(FuzzyFdTest, DegeneratesToRegularFdWithImpossibleThreshold) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFdOptions opts = PaperPipelineOptions();
  // θ = 0 with the strict `dist < θ` rule admits nothing — even distance-0
  // pairs like case variants — so only byte-equal values unify (a no-op).
  opts.matcher.threshold = 0.0;
  opts.matcher.normalize_identity = false;  // prepass = byte equality only
  FuzzyFullDisjunction fuzzy(opts);
  auto fuzzy_result = fuzzy.RunToTuples(tables, *aligned);
  ASSERT_TRUE(fuzzy_result.ok());
  auto regular = RegularFdBaseline(tables, *aligned, FdOptions(), false, 0,
                                   nullptr);
  ASSERT_TRUE(regular.ok());
  ASSERT_EQ(fuzzy_result->tuples.size(), regular->tuples.size());
  for (size_t i = 0; i < regular->tuples.size(); ++i) {
    EXPECT_EQ(fuzzy_result->tuples[i].values, regular->tuples[i].values);
  }
}

TEST(FuzzyFdTest, ParallelPipelineMatchesSequential) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFdOptions seq_opts = PaperPipelineOptions();
  FuzzyFdOptions par_opts = PaperPipelineOptions();
  par_opts.parallel = true;
  par_opts.num_threads = 3;
  auto seq = FuzzyFullDisjunction(seq_opts).RunToTuples(tables, *aligned);
  auto par = FuzzyFullDisjunction(par_opts).RunToTuples(tables, *aligned);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(seq->tuples.size(), par->tuples.size());
  for (size_t i = 0; i < seq->tuples.size(); ++i) {
    EXPECT_EQ(seq->tuples[i].values, par->tuples[i].values);
  }
}

TEST(FuzzyFdTest, RunProducesTableWithProvenance) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFdOptions opts = PaperPipelineOptions();
  opts.include_provenance = true;
  auto table = FuzzyFullDisjunction(opts).Run(tables, *aligned);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 5u);
  EXPECT_EQ(table->schema().field(0).name, "TIDs");
}

TEST(FuzzyFdTest, ReportTimingsPopulated) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFdReport report;
  auto result = FuzzyFullDisjunction(PaperPipelineOptions())
                    .RunToTuples(tables, *aligned, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(report.match_seconds, 0.0);
  EXPECT_GE(report.fd_seconds, 0.0);
  EXPECT_GT(report.total_seconds(), 0.0);
  EXPECT_EQ(report.fd_stats.results, 5u);
}

TEST(FuzzyFdTest, InternedRewriteMatchesStringKeyedSemantics) {
  // Parity test for the ValueDict-interned rewrite scan: the historical
  // implementation looked every cell up by ToString, so (1) repeated cells
  // are all rewritten and (2) typed twins — distinct Values sharing one
  // string rendering, like Int(5) and String("5") — are both rewritten by
  // a map entry for that string. The interned scan must preserve both
  // behaviors while doing the string lookup once per distinct Value.
  auto a = Table::FromRows("A", {"k"}, {{S("05")}});
  auto b = Table::FromRows("B", {"k"},
                           {{S("5")},
                            {Value::Int(5)},
                            {S("5")},
                            {Value::Int(5)},
                            {S("other")}});
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<Table> tables{*a, *b};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());

  FuzzyFdOptions opts;
  // Deterministic toy distance: "05" ~ "5" are near, everything else far,
  // so the assignment merges exactly that pair. Tie on global frequency →
  // the earlier column's "05" is elected representative, producing the
  // rewrite map {"5" → S("05")} on B.k.
  opts.matcher.string_distance = [](std::string_view x, std::string_view y) {
    return (x == "05" && y == "5") || (x == "5" && y == "05") ? 0.1 : 1.0;
  };
  FuzzyFdReport report;
  auto rewritten =
      FuzzyFullDisjunction(opts).RewriteTables(tables, *aligned, &report);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  // All four "5"-rendering cells rewrote — both String twins and both Int
  // twins — and the unrelated value did not.
  EXPECT_EQ(report.values_rewritten, 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ((*rewritten)[1].At(r, 0), S("05")) << "row " << r;
  }
  EXPECT_EQ((*rewritten)[1].At(4, 0), S("other"));
  EXPECT_EQ((*rewritten)[0].At(0, 0), S("05"));  // representative untouched
}

TEST(FuzzyFdTest, TypedValuesSurviveRewrite) {
  // Numeric join columns: equal ints match in the exact pre-pass and must
  // remain Int64 after rewriting (no stringification).
  auto t1 = Table::FromRows("A", {"id", "x"},
                            {{Value::Int(1), S("a")}, {Value::Int(2), S("b")}});
  auto t2 = Table::FromRows("B", {"id", "y"},
                            {{Value::Int(1), S("p")}, {Value::Int(3), S("q")}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::vector<Table> tables{*t1, *t2};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFullDisjunction fuzzy(PaperPipelineOptions());
  auto rewritten = fuzzy.RewriteTables(tables, *aligned, nullptr);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)[0].At(0, 0).type(), ValueType::kInt64);
  auto result = fuzzy.RunToTuples(tables, *aligned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 3u);  // join on 1, singles for 2 and 3
}

}  // namespace
}  // namespace lakefuzz
