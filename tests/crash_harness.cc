// The child half of the catalog crash-recovery harness: a standalone binary
// (no gtest) that builds the deterministic crash lake, commits generation 1,
// applies the V1→V2 mutation, and commits generation 2 — with the crash
// injector armed from the LAKEFUZZ_CRASH_POINT environment variable by the
// parent (tests/catalog_crash_test.cc). With "catalog/:N" armed, the
// (N+1)-th catalog IO poke — any write, fsync, rename, read, or mmap seam —
// kills the process with std::_Exit(137), no unwinding, mid-save. The
// parent sweeps N over every seam and asserts recovery after each kill.
//
// Exit codes: 0 = both saves committed (countdown exceeded the run's poke
// count, the sweep is done), 137 = armed crash fired, 2 = usage error,
// 3 = a lake/save operation failed for a reason other than the crash.
#include <cstdio>
#include <string>
#include <utility>

#include "catalog/catalog.h"
#include "core/engine.h"
#include "crash_lake.h"
#include "util/result.h"

namespace {

int Die(const char* what, const lakefuzz::Status& status) {
  std::fprintf(stderr, "crash_harness: %s: %s\n", what,
               status.ToString().c_str());
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lakefuzz;
  if (argc != 2) {
    std::fprintf(stderr, "usage: crash_harness <catalog-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];

  auto engine = crashlake::MakeEngine();
  if (!engine.ok()) return Die("create", engine.status());
  for (auto& entry : crashlake::V1Tables()) {
    Status s = (*engine)->RegisterTable(entry.first, std::move(entry.second));
    if (!s.ok()) return Die("register v1", s);
  }
  auto save1 = (*engine)->SaveCatalog(dir);
  if (!save1.ok()) return Die("save v1", save1.status());

  // V1 → V2: replace cities_extra with different content, add cities_na.
  Status s = (*engine)->Unregister("cities_extra");
  if (!s.ok()) return Die("unregister", s);
  s = (*engine)->RegisterTable("cities_extra", crashlake::TableB2());
  if (!s.ok()) return Die("register b2", s);
  s = (*engine)->RegisterTable("cities_na", crashlake::TableD());
  if (!s.ok()) return Die("register d", s);
  auto save2 = (*engine)->SaveCatalog(dir);
  if (!save2.ok()) return Die("save v2", save2.status());

  std::printf("crash_harness: committed gen %llu then gen %llu\n",
              static_cast<unsigned long long>(save1->generation),
              static_cast<unsigned long long>(save2->generation));
  return 0;
}
