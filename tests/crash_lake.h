// The deterministic lake the crash harness builds and the recovery test
// re-derives. tests/crash_harness.cc (the killed child) registers V1, saves,
// applies the mutation, and saves again; tests/catalog_crash_test.cc (the
// surviving parent) rebuilds the same tables in memory to check that every
// recovered generation answers Integrate / DiscoverUnionable byte-for-byte
// like an engine that never touched disk. Sharing the builders here keeps
// the two sides from drifting.
#ifndef LAKEFUZZ_TESTS_CRASH_LAKE_H_
#define LAKEFUZZ_TESTS_CRASH_LAKE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {
namespace crashlake {

inline Value S(const std::string& s) { return Value::String(s); }

inline Table TableA() {
  auto t = Table::FromRows("cities_eu", {"City", "Country", "Mayor"},
                           {{S("Berlin"), S("Germany"), S("Kai W.")},
                            {S("Paris"), S("France"), S("Anne H.")},
                            {S("Madrid"), S("Spain"), S("Jose A.")},
                            {S("Rome"), S("Italy"), S("Roberto G.")}});
  return std::move(t).value();
}

inline Table TableB() {
  auto t = Table::FromRows("cities_extra", {"City", "Population"},
                           {{S("Berlin"), S("3.6M")},
                            {S("Lisbon"), S("0.5M")},
                            {S("Vienna"), S("1.9M")}});
  return std::move(t).value();
}

/// The V2 replacement for "cities_extra": same name, different content —
/// recovery at generation 2 must serve THESE rows, never TableB()'s.
inline Table TableB2() {
  auto t = Table::FromRows("cities_extra", {"City", "Population", "Area"},
                           {{S("Berlin"), S("3.7M"), S("892km2")},
                            {S("Lisbon"), S("0.55M"), S("100km2")},
                            {S("Prague"), S("1.3M"), S("496km2")}});
  return std::move(t).value();
}

inline Table TableC() {
  auto t = Table::FromRows("beers", {"Beer", "Brewery"},
                           {{S("Pilsner"), S("Urquell")},
                            {S("Stout"), S("Guinness")},
                            {S("Lager"), S("Augustiner")}});
  return std::move(t).value();
}

/// New in V2.
inline Table TableD() {
  auto t = Table::FromRows("cities_na", {"City", "Country"},
                           {{S("Toronto"), S("Canada")},
                            {S("Chicago"), S("USA")},
                            {S("Mexico City"), S("Mexico")}});
  return std::move(t).value();
}

/// (name, table) pairs in registration order.
inline std::vector<std::pair<std::string, Table>> V1Tables() {
  std::vector<std::pair<std::string, Table>> lake;
  lake.emplace_back("cities_eu", TableA());
  lake.emplace_back("cities_extra", TableB());
  lake.emplace_back("beers", TableC());
  return lake;
}

inline std::vector<std::pair<std::string, Table>> V2Tables() {
  std::vector<std::pair<std::string, Table>> lake;
  lake.emplace_back("cities_eu", TableA());
  lake.emplace_back("cities_extra", TableB2());
  lake.emplace_back("beers", TableC());
  lake.emplace_back("cities_na", TableD());
  return lake;
}

/// Single-threaded engine: the byte-identity comparisons must not depend on
/// worker scheduling.
inline Result<std::unique_ptr<LakeEngine>> MakeEngine() {
  return LakeEngine::Create(EngineOptions().SetNumThreads(1));
}

}  // namespace crashlake
}  // namespace lakefuzz

#endif  // LAKEFUZZ_TESTS_CRASH_LAKE_H_
