// Tests for src/datagen: corruptions and the three benchmark generators.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datagen/autojoin.h"
#include "datagen/corruption.h"
#include "datagen/embench.h"
#include "datagen/imdb.h"
#include "embedding/vocab.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- Corruption

TEST(CorruptionTest, TypoChangesStringPreservingFirstChar) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string s = ApplyTypo(&rng, "Barcelona");
    EXPECT_EQ(s[0], 'B');
    EXPECT_GE(s.size(), 8u);
    EXPECT_LE(s.size(), 10u);
  }
}

TEST(CorruptionTest, TypoLeavesTinyStringsAlone) {
  Rng rng(2);
  EXPECT_EQ(ApplyTypo(&rng, "a"), "a");
  EXPECT_EQ(ApplyTypo(&rng, ""), "");
}

TEST(CorruptionTest, CaseNoiseOnlyChangesCase) {
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    std::string s = ApplyCaseNoise(&rng, "Berlin");
    EXPECT_TRUE(EqualsIgnoreCase(s, "Berlin")) << s;
  }
}

TEST(CorruptionTest, ReverseTokens) {
  EXPECT_EQ(ReverseTokens("John Smith"), "Smith, John");
  EXPECT_EQ(ReverseTokens("Anna Maria Lopez"), "Lopez, Anna Maria");
  EXPECT_EQ(ReverseTokens("Mononym"), "Mononym");
}

TEST(CorruptionTest, DropVowelsRemovesOneVowel) {
  Rng rng(4);
  std::string s = DropVowels(&rng, "Department");
  EXPECT_EQ(s.size(), 9u);
  EXPECT_EQ(DropVowels(&rng, "xyz"), "xyz");  // nothing to drop
}

TEST(CorruptionTest, TruncateTokens) {
  EXPECT_EQ(TruncateTokens("a b c d", 2), "a b");
  EXPECT_EQ(TruncateTokens("a b", 5), "a b");
}

TEST(CorruptionTest, CorruptRespectsZeroConfig) {
  Rng rng(5);
  CorruptionConfig off;  // all probabilities zero
  EXPECT_EQ(Corrupt(&rng, "Untouched String", off), "Untouched String");
}

TEST(CorruptionTest, CorruptDeterministicPerSeed) {
  CorruptionConfig cfg;
  cfg.typo = 0.8;
  cfg.case_noise = 0.5;
  Rng r1(6), r2(6);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(Corrupt(&r1, "Barcelona", cfg), Corrupt(&r2, "Barcelona", cfg));
  }
}

// ---------------------------------------------------------------- Auto-Join

TEST(AutoJoinTest, SeventeenTopics) {
  EXPECT_EQ(AutoJoinNumTopics(), 17u);
  std::set<std::string> names(AutoJoinTopicNames().begin(),
                              AutoJoinTopicNames().end());
  EXPECT_EQ(names.size(), 17u);
  EXPECT_TRUE(names.count("countries"));
  EXPECT_TRUE(names.count("officials"));
}

TEST(AutoJoinTest, GeneratesRequestedNumberOfSets) {
  AutoJoinOptions opts;
  opts.num_sets = 31;
  opts.entities_per_set = 40;  // keep the test fast
  auto sets = GenerateAutoJoinBenchmark(opts);
  EXPECT_EQ(sets.size(), 31u);
  std::set<std::string> topics;
  for (const auto& s : sets) topics.insert(s.topic);
  EXPECT_EQ(topics.size(), 17u);  // all topics cycled through
}

TEST(AutoJoinTest, ColumnsAreCleanClean) {
  AutoJoinOptions opts;
  opts.num_sets = 17;
  opts.entities_per_set = 60;
  for (const auto& set : GenerateAutoJoinBenchmark(opts)) {
    ASSERT_GE(set.columns.size(), opts.min_columns);
    ASSERT_LE(set.columns.size(), opts.max_columns);
    for (size_t c = 0; c < set.columns.size(); ++c) {
      std::unordered_set<std::string> distinct(set.columns[c].begin(),
                                               set.columns[c].end());
      EXPECT_EQ(distinct.size(), set.columns[c].size())
          << set.name << " column " << c;
      EXPECT_EQ(set.columns[c].size(), set.entity_of[c].size());
    }
  }
}

TEST(AutoJoinTest, GroundTruthPairsNonEmptyAndCrossColumn) {
  AutoJoinOptions opts;
  opts.entities_per_set = 50;
  AutoJoinSet set = GenerateAutoJoinSet(0, opts, 123);
  auto gt = set.GroundTruthPairs();
  EXPECT_GT(gt.size(), 10u);
}

TEST(AutoJoinTest, DeterministicForSeed) {
  AutoJoinOptions opts;
  opts.entities_per_set = 30;
  AutoJoinSet a = GenerateAutoJoinSet(3, opts, 99);
  AutoJoinSet b = GenerateAutoJoinSet(3, opts, 99);
  EXPECT_EQ(a.columns, b.columns);
  EXPECT_EQ(a.entity_of, b.entity_of);
}

TEST(AutoJoinTest, DifferentSeedsDiffer) {
  AutoJoinOptions opts;
  opts.entities_per_set = 30;
  AutoJoinSet a = GenerateAutoJoinSet(0, opts, 1);
  AutoJoinSet b = GenerateAutoJoinSet(0, opts, 2);
  EXPECT_NE(a.columns, b.columns);
}

TEST(AutoJoinTest, FirstColumnHoldsCanonicalForms) {
  AutoJoinOptions opts;
  opts.entities_per_set = 30;
  AutoJoinSet set = GenerateAutoJoinSet(0, opts, 5);  // countries
  // Column 0 is canonical style: every value must be a known canonical.
  std::set<std::string> canonicals;
  for (const auto& g : TopicByName("countries").groups) {
    canonicals.insert(g.canonical);
  }
  for (const auto& v : set.columns[0]) {
    EXPECT_TRUE(canonicals.count(v)) << v;
  }
}

TEST(AutoJoinTest, ValueItemIdDistinguishesColumns) {
  EXPECT_NE(ValueItemId(0, "x"), ValueItemId(1, "x"));
  EXPECT_EQ(ValueItemId(2, "x"), ValueItemId(2, "x"));
}

// ---------------------------------------------------------------- IMDB

TEST(ImdbTest, SixTablesWithExpectedSchemas) {
  ImdbOptions opts;
  opts.target_tuples = 500;
  auto bench = GenerateImdb(opts);
  ASSERT_EQ(bench.tables.size(), 6u);
  EXPECT_EQ(bench.tables[0].name(), "name_basics");
  EXPECT_EQ(bench.tables[1].name(), "title_basics");
  EXPECT_TRUE(bench.tables[2].schema().HasField("tconst"));
  EXPECT_TRUE(bench.tables[4].schema().HasField("nconst"));
}

TEST(ImdbTest, RespectsTupleBudget) {
  for (size_t target : {200u, 1000u, 5000u}) {
    ImdbOptions opts;
    opts.target_tuples = target;
    auto bench = GenerateImdb(opts);
    EXPECT_LE(bench.total_tuples, target);
    EXPECT_GT(bench.total_tuples, target * 8 / 10) << "target " << target;
  }
}

TEST(ImdbTest, KeysAreWellFormed) {
  ImdbOptions opts;
  opts.target_tuples = 300;
  auto bench = GenerateImdb(opts);
  const Table& basics = bench.tables[1];
  for (size_t r = 0; r < basics.NumRows(); ++r) {
    const std::string& t = basics.At(r, 0).AsString();
    EXPECT_EQ(t.substr(0, 2), "tt");
    EXPECT_EQ(t.size(), 9u);
  }
  const Table& names = bench.tables[0];
  for (size_t r = 0; r < names.NumRows(); ++r) {
    EXPECT_EQ(names.At(r, 0).AsString().substr(0, 2), "nm");
  }
}

TEST(ImdbTest, PrincipalsReferenceEmittedNames) {
  ImdbOptions opts;
  opts.target_tuples = 400;
  auto bench = GenerateImdb(opts);
  std::unordered_set<std::string> known;
  const Table& names = bench.tables[0];
  for (size_t r = 0; r < names.NumRows(); ++r) {
    known.insert(names.At(r, 0).AsString());
  }
  // Most principals' nconst should resolve (tail may be cut by the budget).
  const Table& principals = bench.tables[4];
  size_t resolved = 0;
  for (size_t r = 0; r < principals.NumRows(); ++r) {
    resolved += known.count(principals.At(r, 1).AsString());
  }
  EXPECT_GT(resolved, principals.NumRows() / 2);
}

TEST(ImdbTest, DeterministicForSeed) {
  ImdbOptions opts;
  opts.target_tuples = 300;
  auto a = GenerateImdb(opts);
  auto b = GenerateImdb(opts);
  ASSERT_EQ(a.total_tuples, b.total_tuples);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(a.tables[i].NumRows(), b.tables[i].NumRows());
    for (size_t r = 0; r < a.tables[i].NumRows(); ++r) {
      EXPECT_EQ(a.tables[i].Row(r), b.tables[i].Row(r));
    }
  }
}

// ---------------------------------------------------------------- EM bench

TEST(EmBenchTest, TidLabelsMatchRowCount) {
  EmBenchOptions opts;
  opts.num_entities = 60;
  auto bench = GenerateEmBenchmark(opts);
  size_t total_rows = 0;
  for (const auto& t : bench.tables) total_rows += t.NumRows();
  ASSERT_EQ(bench.tid_entity.size(), total_rows);
  // TIDs must be 0..n-1 in order.
  for (size_t i = 0; i < bench.tid_entity.size(); ++i) {
    EXPECT_EQ(bench.tid_entity[i].first, i);
  }
}

TEST(EmBenchTest, JoinChainSchema) {
  // Join chain: tables 0,1 share "name"; tables 1,2 share "email".
  EmBenchOptions opts;
  opts.num_entities = 40;
  auto bench = GenerateEmBenchmark(opts);
  ASSERT_EQ(bench.tables.size(), 3u);
  EXPECT_EQ(bench.tables[0].schema().field(0).name, "name");
  EXPECT_EQ(bench.tables[1].schema().field(0).name, "name");
  EXPECT_TRUE(bench.tables[1].schema().HasField("email"));
  EXPECT_EQ(bench.tables[2].schema().field(0).name, "email");
  EXPECT_FALSE(bench.tables[2].schema().HasField("name"));
}

TEST(EmBenchTest, CorruptionProducesFuzzyVariants) {
  EmBenchOptions opts;
  opts.num_entities = 120;
  opts.corruption = 0.5;
  auto bench = GenerateEmBenchmark(opts);
  // Collect per-entity *name* surfaces (tables 0 and 1); at least some
  // entities must have inconsistent surfaces (what the benchmark stresses).
  std::map<uint64_t, std::set<std::string>> surfaces;
  size_t tid = 0;
  for (size_t l = 0; l < bench.tables.size(); ++l) {
    const Table& t = bench.tables[l];
    for (size_t r = 0; r < t.NumRows(); ++r, ++tid) {
      if (l % 3 == 2) continue;  // email-keyed table
      surfaces[bench.tid_entity[tid].second].insert(t.At(r, 0).AsString());
    }
  }
  size_t fuzzy_entities = 0;
  for (const auto& [e, forms] : surfaces) {
    if (forms.size() > 1) ++fuzzy_entities;
  }
  EXPECT_GT(fuzzy_entities, 20u);
}

TEST(EmBenchTest, ZeroCorruptionKeepsSurfacesCanonical) {
  EmBenchOptions opts;
  opts.num_entities = 50;
  opts.corruption = 0.0;
  auto bench = GenerateEmBenchmark(opts);
  std::map<uint64_t, std::set<std::string>> surfaces;
  size_t tid = 0;
  for (size_t l = 0; l < bench.tables.size(); ++l) {
    const Table& t = bench.tables[l];
    for (size_t r = 0; r < t.NumRows(); ++r, ++tid) {
      if (l % 3 == 2) continue;  // email-keyed table
      surfaces[bench.tid_entity[tid].second].insert(t.At(r, 0).AsString());
    }
  }
  for (const auto& [e, forms] : surfaces) {
    EXPECT_EQ(forms.size(), 1u) << "entity " << e;
  }
}

TEST(EmBenchTest, DeterministicForSeed) {
  EmBenchOptions opts;
  opts.num_entities = 30;
  auto a = GenerateEmBenchmark(opts);
  auto b = GenerateEmBenchmark(opts);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    ASSERT_EQ(a.tables[i].NumRows(), b.tables[i].NumRows());
  }
  EXPECT_EQ(a.tid_entity, b.tid_entity);
}

}  // namespace
}  // namespace lakefuzz
