// Tests for the lake-scale discovery subsystem: column sketches (MinHash vs
// exact Jaccard), the LSH banding index, the planted-lake generator,
// engine-level DiscoverUnionable / DiscoverAndIntegrate (recall,
// determinism across index-build thread counts, bit-identity with manual
// integration), cancellation, and registry unregistration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_set>

#include "core/engine.h"
#include "datagen/lake.h"
#include "discovery/column_sketch.h"
#include "discovery/lsh_index.h"
#include "fd/session_dict.h"
#include "util/rng.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- sketches

/// Interns `ids` (as strings "v<i>") into `dict` and returns the code span.
std::vector<uint32_t> CodesFor(const std::vector<uint64_t>& ids,
                               ValueDict* dict) {
  std::vector<uint32_t> codes;
  codes.reserve(ids.size());
  for (uint64_t id : ids) {
    codes.push_back(dict->Intern(Value::String("v" + std::to_string(id))));
  }
  return codes;
}

double ExactJaccard(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) {
  std::set<uint64_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  size_t inter = 0;
  for (uint64_t x : sa) inter += sb.count(x);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

TEST(ColumnSketchTest, MinHashTracksExactJaccardOnRandomSets) {
  Rng rng(7);
  SketchOptions opts;
  opts.signature_size = 256;  // standard error ~ 1/16
  double total_err = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    ValueDict dict;
    // Two random subsets of a shared universe, sizes 50–400.
    const uint64_t universe = 200 + rng.Uniform(600);
    auto draw = [&](size_t n) {
      std::vector<uint64_t> out;
      for (size_t i = 0; i < n; ++i) out.push_back(rng.Uniform(universe));
      return out;
    };
    const auto a = draw(50 + rng.Uniform(350));
    const auto b = draw(50 + rng.Uniform(350));
    const auto ca = CodesFor(a, &dict);
    const auto cb = CodesFor(b, &dict);
    const auto sa = BuildColumnSketch("a", ca, dict, opts);
    const auto sb = BuildColumnSketch("b", cb, dict, opts);
    const double est = EstimateJaccard(sa, sb);
    const double exact = ExactJaccard(a, b);
    EXPECT_NEAR(est, exact, 0.15) << "trial " << t;
    total_err += std::abs(est - exact);
  }
  EXPECT_LT(total_err / trials, 0.05);
}

TEST(ColumnSketchTest, SignatureInvariantToCodeOrderAndDuplicates) {
  SketchOptions opts;
  ValueDict d1, d2;
  // Same value multiset, different intern order, extra duplicates, plus
  // unrelated values interned first (shifting all code numbers).
  d2.Intern(Value::String("shift-a"));
  d2.Intern(Value::String("shift-b"));
  std::vector<uint64_t> ids = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint64_t> reversed(ids.rbegin(), ids.rend());
  std::vector<uint64_t> dups = {8, 7, 6, 5, 4, 3, 2, 1, 1, 2, 3, 8, 8};
  const auto s1 = BuildColumnSketch("c", CodesFor(ids, &d1), d1, opts);
  const auto s2 = BuildColumnSketch("c", CodesFor(dups, &d2), d2, opts);
  EXPECT_EQ(s1.signature, s2.signature);
  EXPECT_EQ(s1.profile.distinct, s2.profile.distinct);
}

TEST(ColumnSketchTest, EmptyAndNullColumns) {
  ValueDict dict;
  SketchOptions opts;
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> nulls(5, ValueDict::kNullCode);
  const auto se = BuildColumnSketch("e", empty, dict, opts);
  const auto sn = BuildColumnSketch("n", nulls, dict, opts);
  EXPECT_TRUE(se.empty());
  EXPECT_TRUE(sn.empty());
  EXPECT_EQ(sn.profile.nulls, 5u);
  EXPECT_EQ(EstimateJaccard(se, sn), 0.0);
}

// --------------------------------------------------------------------- LSH

TEST(LshIndexTest, CollidesEqualDropsDisjointAndRemoves) {
  Rng rng(11);
  LshIndex lsh(16, 4);
  auto random_sig = [&] {
    std::vector<uint64_t> s(64);
    for (auto& x : s) x = rng.Next();
    return s;
  };
  const auto sig_a = random_sig();
  const auto sig_b = sig_a;  // identical → collides in every band
  lsh.Add(1, sig_a);
  lsh.Add(2, sig_b);
  for (int i = 0; i < 20; ++i) lsh.Add(100 + i, random_sig());
  EXPECT_EQ(lsh.num_entries(), 22u);

  auto hits = lsh.Query(sig_a);
  EXPECT_TRUE(std::count(hits.begin(), hits.end(), 1u));
  EXPECT_TRUE(std::count(hits.begin(), hits.end(), 2u));
  // Independent random signatures collide with negligible probability.
  EXPECT_LE(hits.size(), 2u + 1u);

  lsh.Remove(2, sig_b);
  hits = lsh.Query(sig_a);
  EXPECT_FALSE(std::count(hits.begin(), hits.end(), 2u));
  EXPECT_EQ(lsh.num_entries(), 21u);
}

// ----------------------------------------------------------------- datagen

TEST(LakeGeneratorTest, ShapeAndDeterminism) {
  LakeOptions opts;
  opts.num_tables = 30;
  opts.num_groups = 4;
  opts.group_size = 5;
  opts.rows_per_table = 20;
  auto lake = GenerateLake(opts);
  ASSERT_EQ(lake.tables.size(), 30u);
  ASSERT_EQ(lake.groups.size(), 4u);
  for (const auto& g : lake.groups) EXPECT_EQ(g.size(), 5u);
  // Same seed → identical lake, different seed → different cells.
  auto again = GenerateLake(opts);
  EXPECT_TRUE(lake.tables[3].At(7, 1) == again.tables[3].At(7, 1));
  opts.seed += 1;
  auto other = GenerateLake(opts);
  bool any_diff = false;
  for (size_t r = 0; r < 20 && !any_diff; ++r) {
    any_diff = !(lake.tables[0].At(r, 0) == other.tables[0].At(r, 0));
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------- engine-level

std::unique_ptr<LakeEngine> MakeLakeEngine(const GeneratedLake& lake,
                                           size_t threads,
                                           bool build_at_register = true) {
  auto engine = LakeEngine::Create(
      EngineOptions()
          .SetNumThreads(threads)
          .SetDiscovery(
              DiscoveryOptions().SetBuildAtRegister(build_at_register)));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  for (const auto& t : lake.tables) {
    EXPECT_TRUE((*engine)->RegisterTable(t.name(), t).ok());
  }
  return std::move(engine).value();
}

TEST(DiscoveryTest, RecallOnPlantedLakeOf200Tables) {
  // The acceptance-criterion instance: >= 200 tables, planted groups,
  // recall >= 0.9 for planted members at k = group size.
  LakeOptions opts;  // defaults: 24 groups x 5 + 80 noise = 200 tables
  auto lake = GenerateLake(opts);
  ASSERT_GE(lake.tables.size(), 200u);
  auto engine = MakeLakeEngine(lake, /*threads=*/1);
  EXPECT_EQ(engine->discovery_index().num_tables(), lake.tables.size());

  size_t expected = 0, found = 0;
  for (const auto& group : lake.groups) {
    for (const auto& member : group) {
      auto top = engine->DiscoverUnionable(member, opts.group_size);
      ASSERT_TRUE(top.ok()) << top.status().ToString();
      std::unordered_set<std::string> names;
      for (const auto& c : *top) names.insert(c.name);
      for (const auto& partner : group) {
        if (partner == member) continue;
        ++expected;
        found += names.count(partner);
      }
    }
  }
  const double recall =
      static_cast<double>(found) / static_cast<double>(expected);
  EXPECT_GE(recall, 0.9) << found << "/" << expected;
}

TEST(DiscoveryTest, CandidatesCarryUsefulScores) {
  LakeOptions opts;
  opts.num_tables = 12;
  opts.num_groups = 2;
  opts.group_size = 4;
  auto lake = GenerateLake(opts);
  auto engine = MakeLakeEngine(lake, 1);
  auto top = engine->DiscoverUnionable(lake.groups[0][0], 3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 3u);
  for (const auto& c : *top) {
    // All three hits are the query's group partners: shared values and a
    // shared schema.
    EXPECT_GT(c.overlap, 0.2) << c.name;
    EXPECT_GT(c.compat, 0.5) << c.name;
    EXPECT_EQ(c.matched_columns, opts.columns_per_table);
    EXPECT_GT(c.score, 0.0);
    EXPECT_LE(c.score, 1.0);
  }
  // Ranked: scores non-increasing.
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i - 1].score, (*top)[i].score);
  }
}

TEST(DiscoveryTest, TopKIdenticalAcrossIndexBuildThreadsAndBuildModes) {
  LakeOptions opts;
  opts.num_tables = 40;
  opts.num_groups = 6;
  opts.group_size = 4;
  opts.rows_per_table = 30;
  auto lake = GenerateLake(opts);

  // Eager builds at 1/2/8 threads, plus a lazy bulk build at 8 threads
  // (resync path): same lake must yield bit-identical candidate lists.
  std::vector<std::unique_ptr<LakeEngine>> engines;
  engines.push_back(MakeLakeEngine(lake, 1));
  engines.push_back(MakeLakeEngine(lake, 2));
  engines.push_back(MakeLakeEngine(lake, 8));
  engines.push_back(MakeLakeEngine(lake, 8, /*build_at_register=*/false));

  for (const auto& group : lake.groups) {
    const std::string& query = group[0];
    auto reference = engines[0]->DiscoverUnionable(query, 6);
    ASSERT_TRUE(reference.ok());
    for (size_t e = 1; e < engines.size(); ++e) {
      auto got = engines[e]->DiscoverUnionable(query, 6);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), reference->size()) << "engine " << e;
      for (size_t i = 0; i < got->size(); ++i) {
        EXPECT_EQ((*got)[i].name, (*reference)[i].name)
            << "engine " << e << " rank " << i;
        // Bit-identical scores: sketches depend on value content only.
        EXPECT_EQ((*got)[i].score, (*reference)[i].score);
        EXPECT_EQ((*got)[i].overlap, (*reference)[i].overlap);
      }
    }
  }
}

TEST(DiscoveryTest, LazyBuildSurvivesUnregisterBeforeFirstQuery) {
  // Regression: RemoveTable on a never-built (lazy) index must not
  // fast-forward the index version to the registry's — that would make the
  // empty index look current and every later query fail with kNotFound.
  LakeOptions opts;
  opts.num_tables = 8;
  opts.num_groups = 2;
  opts.group_size = 3;
  auto lake = GenerateLake(opts);
  auto engine = MakeLakeEngine(lake, 1, /*build_at_register=*/false);
  ASSERT_TRUE(engine->Unregister(lake.tables.back().name()).ok());
  auto top = engine->DiscoverUnionable(lake.groups[0][0], 2);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(top->size(), 2u);
  EXPECT_EQ(engine->discovery_index().num_tables(), lake.tables.size() - 1);
}

TEST(DiscoveryTest, AdHocQueryDoesNotGrowSessionDict) {
  LakeOptions opts;
  opts.num_tables = 8;
  opts.num_groups = 2;
  opts.group_size = 3;
  auto lake = GenerateLake(opts);
  auto engine = MakeLakeEngine(lake, 1);
  const size_t distinct_before = engine->session_dict().NumDistinct();
  auto fresh = Table::FromRows(
      "q", {"x"}, {{Value::String("never-seen-1")},
                   {Value::String("never-seen-2")}});
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(engine->DiscoverUnionable(*fresh, 2).ok());
  EXPECT_EQ(engine->session_dict().NumDistinct(), distinct_before);
}

TEST(DiscoveryTest, LazyBuildSyncsOnFirstQuery) {
  LakeOptions opts;
  opts.num_tables = 10;
  opts.num_groups = 2;
  opts.group_size = 3;
  auto lake = GenerateLake(opts);
  auto engine = MakeLakeEngine(lake, 1, /*build_at_register=*/false);
  // Nothing sketched at registration...
  EXPECT_EQ(engine->discovery_index().num_tables(), 0u);
  // ... the first query observes the version mismatch and bulk-builds.
  auto top = engine->DiscoverUnionable(lake.groups[0][0], 2);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(engine->discovery_index().num_tables(), lake.tables.size());
  EXPECT_EQ(top->size(), 2u);
}

TEST(DiscoveryTest, AdHocQueryTableFindsItsGroup) {
  LakeOptions opts;
  opts.num_tables = 16;
  opts.num_groups = 3;
  opts.group_size = 4;
  auto lake = GenerateLake(opts);
  // Hold one member out of the lake and query with the raw table.
  const std::string held_out = lake.groups[1][2];
  auto engine = LakeEngine::Create(EngineOptions());
  ASSERT_TRUE(engine.ok());
  Table query;
  for (const auto& t : lake.tables) {
    if (t.name() == held_out) {
      query = t;
      continue;
    }
    ASSERT_TRUE((*engine)->RegisterTable(t.name(), t).ok());
  }
  auto top = (*engine)->DiscoverUnionable(query, 3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 3u);
  std::unordered_set<std::string> names;
  for (const auto& c : *top) names.insert(c.name);
  for (const auto& partner : lake.groups[1]) {
    if (partner == held_out) continue;
    EXPECT_TRUE(names.count(partner)) << partner;
  }
}

/// Collects every decoded tuple; used for bit-identity comparisons.
class CollectingSink : public RowSink {
 public:
  Status Begin(const std::vector<std::string>& names) override {
    universal_names = names;
    return Status::OK();
  }
  Status OnBatch(const std::vector<FdResultTuple>& batch) override {
    tuples.insert(tuples.end(), batch.begin(), batch.end());
    return Status::OK();
  }
  std::vector<std::string> universal_names;
  std::vector<FdResultTuple> tuples;
};

TEST(DiscoveryTest, DiscoverAndIntegrateMatchesManualIntegrateBitIdentical) {
  LakeOptions opts;
  opts.num_tables = 10;
  opts.num_groups = 2;
  opts.group_size = 3;
  opts.rows_per_table = 24;
  auto lake = GenerateLake(opts);
  const std::string query = lake.groups[0][0];

  RequestOptions req;
  req.holistic_alignment = false;  // planted groups share headers

  // Reference: engine at 1 thread, manual IntegrateToSink over the
  // discovered name list.
  auto reference_engine = MakeLakeEngine(lake, 1);
  std::vector<DiscoveryCandidate> discovered;
  CollectingSink via_discovery;
  auto report = reference_engine->DiscoverAndIntegrate(
      query, 2, &via_discovery, req, &discovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(discovered.size(), 2u);

  std::vector<std::string> names = {query};
  for (const auto& c : discovered) names.push_back(c.name);
  CollectingSink manual;
  auto manual_report =
      reference_engine->IntegrateToSink(names, &manual, req);
  ASSERT_TRUE(manual_report.ok());

  ASSERT_EQ(via_discovery.universal_names, manual.universal_names);
  ASSERT_EQ(via_discovery.tuples.size(), manual.tuples.size());
  for (size_t i = 0; i < manual.tuples.size(); ++i) {
    EXPECT_TRUE(via_discovery.tuples[i] == manual.tuples[i]) << "tuple " << i;
  }

  // And across index-build thread counts the full discover+integrate output
  // stays byte-identical.
  for (size_t threads : {2u, 8u}) {
    auto engine = MakeLakeEngine(lake, threads);
    CollectingSink sink;
    auto r = engine->DiscoverAndIntegrate(query, 2, &sink, req);
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    ASSERT_EQ(sink.universal_names, via_discovery.universal_names);
    ASSERT_EQ(sink.tuples.size(), via_discovery.tuples.size());
    for (size_t i = 0; i < sink.tuples.size(); ++i) {
      EXPECT_TRUE(sink.tuples[i] == via_discovery.tuples[i])
          << "threads=" << threads << " tuple " << i;
    }
  }
}

TEST(DiscoveryTest, CancelMidDiscoverySurfacesAsCancelled) {
  LakeOptions opts;
  opts.num_tables = 12;
  opts.num_groups = 2;
  opts.group_size = 3;
  auto lake = GenerateLake(opts);
  auto engine = MakeLakeEngine(lake, 2);

  // Fired from the progress callback the moment discovery starts: the
  // search (or the integration behind it) must stop at a checkpoint.
  RequestOptions req;
  req.holistic_alignment = false;
  req.cancel = CancelToken::Create();
  req.progress = [&req](const ProgressEvent& e) {
    if (e.stage == Stage::kDiscover && e.done == 0) req.cancel.Cancel();
  };
  CollectingSink sink;
  auto r = engine->DiscoverAndIntegrate(lake.groups[0][0], 2, &sink, req);
  EXPECT_EQ(r.code(), ErrorCode::kCancelled);
  EXPECT_TRUE(sink.tuples.empty());

  // Pre-fired token: rejected before any work.
  CancelToken fired = CancelToken::Create();
  fired.Cancel();
  EXPECT_EQ(engine->DiscoverUnionable(lake.groups[0][0], 2, fired).code(),
            ErrorCode::kCancelled);
}

TEST(DiscoveryTest, CancelAbortsBulkResyncAndLeavesIndexStale) {
  // The bulk (lazy / stale-index) build is the dominant cost of a cold
  // discovery call; a fired token must abort it and keep the index
  // observably stale so the next call rebuilds.
  LakeOptions opts;
  opts.num_tables = 10;
  opts.num_groups = 2;
  opts.group_size = 3;
  auto lake = GenerateLake(opts);
  SessionDict dict;
  DiscoveryIndex index(DiscoveryOptions(), &dict, /*pool=*/nullptr);
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>> snapshot;
  for (auto& t : lake.tables) {
    snapshot.emplace_back(t.name(), std::make_shared<const Table>(t));
  }
  CancelToken fired = CancelToken::Create();
  fired.Cancel();
  EXPECT_EQ(index.Resync(snapshot, /*version=*/1, fired).code(),
            ErrorCode::kCancelled);
  EXPECT_EQ(index.num_tables(), 0u);
  EXPECT_EQ(index.version(), 0u);  // still stale: next call resyncs
  ASSERT_TRUE(index.Resync(snapshot, /*version=*/1).ok());
  EXPECT_EQ(index.num_tables(), lake.tables.size());
  EXPECT_EQ(index.version(), 1u);
}

TEST(DiscoveryTest, UnregisterRemovesFromIndexAndTypesErrors) {
  LakeOptions opts;
  opts.num_tables = 8;
  opts.num_groups = 2;
  opts.group_size = 3;
  auto lake = GenerateLake(opts);
  auto engine = MakeLakeEngine(lake, 1);

  const std::string query = lake.groups[0][0];
  const std::string partner = lake.groups[0][1];
  auto top = engine->DiscoverUnionable(query, 2);
  ASSERT_TRUE(top.ok());
  std::unordered_set<std::string> names;
  for (const auto& c : *top) names.insert(c.name);
  EXPECT_TRUE(names.count(partner));

  // Unregister the partner: discovery must stop returning it immediately.
  ASSERT_TRUE(engine->Unregister(partner).ok());
  EXPECT_EQ(engine->Unregister(partner).code(), ErrorCode::kNotFound);
  top = engine->DiscoverUnionable(query, 2);
  ASSERT_TRUE(top.ok());
  for (const auto& c : *top) EXPECT_NE(c.name, partner);

  // Discovery by a name that is gone is a typed miss.
  EXPECT_EQ(engine->DiscoverUnionable(partner, 2).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(engine->DiscoverUnionable("never-registered", 2).code(),
            ErrorCode::kNotFound);
  // k = 0 is rejected.
  EXPECT_EQ(engine->DiscoverUnionable(query, 0).code(),
            ErrorCode::kInvalidArgument);
}

// ---------------------------------------------- session-dict concurrency

TEST(DiscoveryTest, ConcurrentColdInterningStaysConsistent) {
  // The sharded intern path: many threads interning overlapping value sets
  // concurrently must agree on one code per value, with no lost inserts.
  SessionDict dict;
  constexpr size_t kThreads = 8;
  constexpr size_t kValues = 2000;
  std::vector<std::thread> workers;
  std::vector<std::vector<uint32_t>> codes(kThreads,
                                           std::vector<uint32_t>(kValues));
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < kValues; ++i) {
        // Each thread interleaves shared values (contended) with private
        // ones (cold inserts in parallel).
        const bool shared = i % 2 == 0;
        const std::string s = shared
                                  ? "shared_" + std::to_string(i)
                                  : StrFormat("t%zu_%zu", t, i);
        codes[t][i] = dict.InternValue(Value::String(s));
      }
    });
  }
  for (auto& w : workers) w.join();

  // One code per distinct value: shared values agree across threads...
  for (size_t i = 0; i < kValues; i += 2) {
    for (size_t t = 1; t < kThreads; ++t) {
      ASSERT_EQ(codes[t][i], codes[0][i]) << "shared value " << i;
    }
  }
  // ... every code decodes back to its value, and the count adds up
  // (kValues/2 shared + kThreads * kValues/2 private).
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 1; i < kValues; i += 2) {
      EXPECT_EQ(dict.dict().Decode(codes[t][i]).AsString(),
                StrFormat("t%zu_%zu", t, i));
    }
  }
  EXPECT_EQ(dict.NumDistinct(), kValues / 2 + kThreads * (kValues / 2));
}

}  // namespace
}  // namespace lakefuzz
