// Tests for src/em: row similarity, entity clustering, TID expansion.
#include <gtest/gtest.h>

#include "em/entity_matcher.h"
#include "embedding/model_zoo.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

Table PeopleTable() {
  Table t("people", Schema::FromNames({"name", "city", "country"}));
  // Rows 0,1: same person with a typo; row 2: unrelated; row 3: homonym of
  // row 0 living elsewhere.
  EXPECT_TRUE(t.AppendRow({S("Robert Smith"), S("Boston"), S("US")}).ok());
  EXPECT_TRUE(t.AppendRow({S("Robert Smyth"), S("Boston"), S("US")}).ok());
  EXPECT_TRUE(t.AppendRow({S("Maria Garcia"), S("Madrid"), S("ES")}).ok());
  EXPECT_TRUE(t.AppendRow({S("Robert Smith"), S("Toronto"), S("CA")}).ok());
  return t;
}

TEST(EntityMatcherTest, RowSimilarityIdenticalRowsIsOne) {
  Table t = PeopleTable();
  EntityMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.RowSimilarity(t, 0, 0), 1.0);
}

TEST(EntityMatcherTest, RowSimilarityOrdersPairsSensibly) {
  Table t = PeopleTable();
  EntityMatcher matcher;
  double typo_pair = matcher.RowSimilarity(t, 0, 1);
  double homonym_pair = matcher.RowSimilarity(t, 0, 3);
  double unrelated = matcher.RowSimilarity(t, 0, 2);
  EXPECT_GT(typo_pair, homonym_pair);
  EXPECT_GT(homonym_pair, unrelated);
  EXPECT_GT(typo_pair, 0.9);
  EXPECT_LT(unrelated, 0.5);
}

TEST(EntityMatcherTest, MinOverlapGatesScore) {
  Table t("sparse", Schema::FromNames({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({S("x"), Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), S("y")}).ok());
  EntityMatcherOptions opts;
  opts.min_overlap_columns = 1;
  EntityMatcher matcher(opts);
  EXPECT_DOUBLE_EQ(matcher.RowSimilarity(t, 0, 1), 0.0);  // no overlap at all
}

TEST(EntityMatcherTest, ClusterMergesTypoPairOnly) {
  Table t = PeopleTable();
  EntityMatcherOptions opts;
  opts.similarity_threshold = 0.9;
  EntityMatcher matcher(opts);
  auto clusters = matcher.Cluster(t);
  // {0,1} together; 2 alone; 3 alone (conflicting city/country drag the
  // homonym's mean similarity under the threshold).
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0, 1}));
}

TEST(EntityMatcherTest, EveryRowInExactlyOneCluster) {
  Table t = PeopleTable();
  EntityMatcher matcher;
  auto clusters = matcher.Cluster(t);
  std::vector<char> seen(t.NumRows(), 0);
  for (const auto& c : clusters) {
    for (size_t r : c) {
      EXPECT_LT(r, t.NumRows());
      EXPECT_EQ(seen[r], 0);
      seen[r] = 1;
    }
  }
  for (char s : seen) EXPECT_EQ(s, 1);
}

TEST(EntityMatcherTest, EmbeddingModeBridgesAliases) {
  // "USA" ↔ "United States": almost no surface overlap (string similarity
  // scores it low), but an unambiguous alias in the knowledge base.
  Table t("alias", Schema::FromNames({"name", "country"}));
  ASSERT_TRUE(t.AppendRow({S("Maria Garcia"), S("United States")}).ok());
  ASSERT_TRUE(t.AppendRow({S("Maria Garcia"), S("USA")}).ok());
  EntityMatcherOptions plain;
  plain.similarity_threshold = 0.85;
  double without = EntityMatcher(plain).RowSimilarity(t, 0, 1);

  EntityMatcherOptions with = plain;
  with.model = MakeModel(ModelKind::kMistral, 128);
  double with_model = EntityMatcher(with).RowSimilarity(t, 0, 1);
  EXPECT_GT(with_model, without);
}

TEST(EntityMatcherTest, EmptyTableYieldsNoClusters) {
  Table t("empty", Schema::FromNames({"a"}));
  EXPECT_TRUE(EntityMatcher().Cluster(t).empty());
}

TEST(ExpandClustersToTidsTest, UnionsAndDeduplicates) {
  std::vector<FdResultTuple> rows(3);
  rows[0].tids = {0, 5};
  rows[1].tids = {5, 7};
  rows[2].tids = {9};
  auto expanded = ExpandClustersToTids(rows, {{0, 1}, {2}});
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0], (std::vector<uint64_t>{0, 5, 7}));
  EXPECT_EQ(expanded[1], (std::vector<uint64_t>{9}));
}

}  // namespace
}  // namespace lakefuzz
