// Tests for src/embedding: vectors, knowledge base, hashed models, zoo.
#include <gtest/gtest.h>

#include <cmath>

#include "embedding/column_embedder.h"
#include "embedding/hashed_model.h"
#include "embedding/knowledge_base.h"
#include "embedding/model_zoo.h"
#include "embedding/vector_ops.h"
#include "embedding/vocab.h"
#include "table/table.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- VectorOps

TEST(VectorOpsTest, DotAndNorm) {
  Vec a{3.0f, 4.0f};
  Vec b{1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(Dot(a, b), 3.0);
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
}

TEST(VectorOpsTest, NormalizeInPlaceUnitNorm) {
  Vec v{3.0f, 4.0f};
  NormalizeInPlace(&v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);
  Vec zero{0.0f, 0.0f};
  NormalizeInPlace(&zero);  // must not divide by zero
  EXPECT_DOUBLE_EQ(Norm(zero), 0.0);
}

TEST(VectorOpsTest, CosineSimilarityRange) {
  Vec a{1.0f, 0.0f};
  Vec b{0.0f, 1.0f};
  Vec c{-1.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, Vec{0.0f, 0.0f}), 0.0);
}

TEST(VectorOpsTest, CosineDistanceComplementsSimilarity) {
  Vec a{1.0f, 2.0f};
  Vec b{2.0f, 1.0f};
  EXPECT_NEAR(CosineDistance(a, b), 1.0 - CosineSimilarity(a, b), 1e-12);
  EXPECT_NEAR(CosineDistance(a, a), 0.0, 1e-9);
}

TEST(VectorOpsTest, DotPrenormalizedParityWithScalarDot) {
  // DotPrenormalized may take the AVX2+FMA kernel on capable hosts; it must
  // agree with the scalar Dot loop to rounding-order noise on every length
  // class (full 8-lane blocks, remainder tails, tiny and empty vectors).
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next_float = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<float>((state >> 33) % 2000) / 1000.0f - 1.0f;
  };
  for (size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 64u, 127u, 768u}) {
    Vec a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = next_float();
      b[i] = next_float();
    }
    double scalar = Dot(a, b);
    double dispatched = DotPrenormalized(a, b);
    EXPECT_NEAR(dispatched, scalar, 1e-9 * (1.0 + std::abs(scalar)))
        << "dimension " << n;
  }
}

TEST(VectorOpsTest, CosineDistancePrenormalizedMatchesDefinition) {
  Vec a{0.6f, 0.8f, 0.0f};
  Vec b{0.0f, 0.6f, 0.8f};
  EXPECT_NEAR(CosineDistancePrenormalized(a, b), 1.0 - Dot(a, b), 1e-12);
}

TEST(VectorOpsTest, AddScaled) {
  Vec a{1.0f, 1.0f};
  AddScaled(&a, Vec{2.0f, 4.0f}, 0.5);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
}

// ---------------------------------------------------------------- Vocab

TEST(VocabTest, TopicsPresentAndNonEmpty) {
  EXPECT_GE(BuiltinTopics().size(), 13u);
  for (const auto& t : BuiltinTopics()) {
    EXPECT_FALSE(t.groups.empty()) << t.topic;
  }
}

TEST(VocabTest, TopicByNameFindsCountries) {
  const TopicVocab& countries = TopicByName("countries");
  bool found_canada = false;
  for (const auto& g : countries.groups) {
    if (g.canonical == "Canada") {
      found_canada = true;
      EXPECT_NE(std::find(g.aliases.begin(), g.aliases.end(), "CA"),
                g.aliases.end());
    }
  }
  EXPECT_TRUE(found_canada);
}

TEST(VocabTest, NameListsNonEmpty) {
  EXPECT_GE(FirstNames().size(), 50u);
  EXPECT_GE(LastNames().size(), 50u);
  EXPECT_GE(CityNames().size(), 80u);
  EXPECT_GE(Nicknames().size(), 30u);
}

// ---------------------------------------------------------------- KB

TEST(KnowledgeBaseTest, BuiltInLooksUpAliases) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  auto canada = kb.Lookup("Canada");
  auto ca = kb.Lookup("CA");
  ASSERT_TRUE(canada.has_value());
  ASSERT_TRUE(ca.has_value());
  EXPECT_EQ(*canada, *ca);
  EXPECT_EQ(*canada, ConceptIdOf("Canada"));
}

TEST(KnowledgeBaseTest, LookupNormalizesSurface) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  EXPECT_EQ(kb.Lookup("  canada  "), kb.Lookup("Canada"));
}

TEST(KnowledgeBaseTest, DifferentConceptsDiffer) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  EXPECT_NE(kb.Lookup("Canada"), kb.Lookup("Germany"));
}

TEST(KnowledgeBaseTest, UnknownSurfaceIsNullopt) {
  EXPECT_FALSE(KnowledgeBase::BuiltIn().Lookup("zzz unknown zzz").has_value());
}

TEST(KnowledgeBaseTest, SubsetCoverageApproximatelyHolds) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  KnowledgeBase half = kb.Subset(0.5, 7);
  double ratio = static_cast<double>(half.size()) / kb.size();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 0.6);
  EXPECT_EQ(kb.Subset(0.0, 7).size(), 0u);
  EXPECT_EQ(kb.Subset(1.0, 7).size(), kb.size());
}

TEST(KnowledgeBaseTest, SubsetDeterministicPerSeed) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  EXPECT_EQ(kb.Subset(0.5, 9).size(), kb.Subset(0.5, 9).size());
  // Same seed → same membership (spot check via lookups).
  KnowledgeBase a = kb.Subset(0.5, 9);
  KnowledgeBase b = kb.Subset(0.5, 9);
  for (const char* probe : {"Canada", "CA", "Germany", "DE", "Spain", "ES"}) {
    EXPECT_EQ(a.Lookup(probe).has_value(), b.Lookup(probe).has_value());
  }
}

// ---------------------------------------------------------------- HashedModel

HashedModelConfig BaseConfig() {
  HashedModelConfig cfg;
  cfg.dim = 128;
  return cfg;
}

TEST(HashedModelTest, DeterministicUnitVectors) {
  HashedNgramModel model(BaseConfig());
  Vec a = model.Embed("Berlin");
  Vec b = model.Embed("Berlin");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 128u);
  EXPECT_NEAR(Norm(a), 1.0, 1e-5);
}

TEST(HashedModelTest, CaseInsensitiveByNormalization) {
  HashedNgramModel model(BaseConfig());
  EXPECT_NEAR(CosineDistance(model.Embed("Barcelona"),
                             model.Embed("barcelona")),
              0.0, 1e-6);
}

TEST(HashedModelTest, TypoCloserThanUnrelated) {
  HashedNgramModel model(BaseConfig());
  double typo = CosineDistance(model.Embed("Berlinn"), model.Embed("Berlin"));
  double unrelated =
      CosineDistance(model.Embed("Berlin"), model.Embed("Caracas"));
  EXPECT_LT(typo, 0.5);
  EXPECT_GT(unrelated, 0.7);
}

TEST(HashedModelTest, KnowledgeBasePullsAliasesTogether) {
  HashedModelConfig plain = BaseConfig();
  HashedNgramModel no_kb(plain);
  double without =
      CosineDistance(no_kb.Embed("Canada"), no_kb.Embed("CA"));

  HashedModelConfig with = BaseConfig();
  with.knowledge_base =
      std::make_shared<KnowledgeBase>(KnowledgeBase::BuiltIn());
  HashedNgramModel with_kb(with);
  double kb_dist =
      CosineDistance(with_kb.Embed("Canada"), with_kb.Embed("CA"));
  // "CA" is ambiguous (Canada | California), so it sits *between* the two
  // concepts — closer to Canada than without the KB, but not at distance 0.
  EXPECT_LT(kb_dist, 0.5);
  EXPECT_LT(kb_dist, without);
}

TEST(HashedModelTest, InitialsFeatureBridgesAcronyms) {
  HashedModelConfig off = BaseConfig();
  HashedModelConfig on = BaseConfig();
  on.use_initials_feature = true;
  HashedNgramModel moff(off), mon(on);
  double d_off =
      CosineDistance(moff.Embed("United States"), moff.Embed("US"));
  double d_on = CosineDistance(mon.Embed("United States"), mon.Embed("US"));
  EXPECT_LT(d_on, d_off);
}

TEST(HashedModelTest, NoiseDegradesButDeterministic) {
  HashedModelConfig noisy = BaseConfig();
  noisy.noise = 0.3;
  HashedNgramModel model(noisy);
  EXPECT_EQ(model.Embed("x"), model.Embed("x"));
  HashedNgramModel clean(BaseConfig());
  // Noise must push a typo pair further apart than the clean model does.
  double dn = CosineDistance(model.Embed("Berlinn"), model.Embed("Berlin"));
  double dc = CosineDistance(clean.Embed("Berlinn"), clean.Embed("Berlin"));
  EXPECT_GT(dn, dc);
}

TEST(HashedModelTest, SeedChangesSpace) {
  HashedModelConfig a = BaseConfig();
  HashedModelConfig b = BaseConfig();
  b.seed = a.seed ^ 0xdead;
  HashedNgramModel ma(a), mb(b);
  EXPECT_GT(CosineDistance(ma.Embed("Berlin"), mb.Embed("Berlin")), 0.2);
}

TEST(HashedModelTest, DegenerateConfigsClamped) {
  HashedModelConfig cfg;
  cfg.dim = 0;
  cfg.ngram_min = 0;
  cfg.ngram_max = 0;
  HashedNgramModel model(cfg);
  EXPECT_GE(model.dim(), 1u);
  EXPECT_EQ(model.Embed("x").size(), model.dim());
}

// ---------------------------------------------------------------- CachingModel

TEST(CachingModelTest, CachesAndMatchesInner) {
  auto inner = std::make_shared<HashedNgramModel>(BaseConfig());
  CachingModel cached(inner);
  EXPECT_EQ(cached.CacheSize(), 0u);
  Vec a = cached.Embed("Berlin");
  Vec b = cached.Embed("Berlin");
  EXPECT_EQ(cached.CacheSize(), 1u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, inner->Embed("Berlin"));
  EXPECT_EQ(cached.dim(), inner->dim());
}

// ---------------------------------------------------------------- ModelZoo

TEST(ModelZooTest, AllKindsConstructWithNames) {
  for (ModelKind kind : AllModelKinds()) {
    auto model = MakeModel(kind, 64);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), ModelKindToString(kind));
    EXPECT_EQ(model->dim(), 64u);
    EXPECT_EQ(model->Embed("probe").size(), 64u);
  }
}

TEST(ModelZooTest, KindNameRoundTrip) {
  for (ModelKind kind : AllModelKinds()) {
    auto parsed = ModelKindFromString(ModelKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ModelKindFromString("GPT-7").ok());
}

TEST(ModelZooTest, MistralKnowsMoreAliasesThanFastText) {
  auto mistral = MakeModel(ModelKind::kMistral);
  auto fasttext = MakeModel(ModelKind::kFastText);
  // Aggregate alias distance over country-code pairs: the LLM-grade profile
  // must be markedly closer on average (it knows the alias dictionary).
  const TopicVocab& countries = TopicByName("countries");
  double sum_m = 0, sum_f = 0;
  size_t n = 0;
  for (size_t i = 0; i < countries.groups.size() && n < 20; ++i) {
    const auto& g = countries.groups[i];
    if (g.aliases.empty()) continue;
    sum_m += CosineDistance(mistral->Embed(g.canonical),
                            mistral->Embed(g.aliases[0]));
    sum_f += CosineDistance(fasttext->Embed(g.canonical),
                            fasttext->Embed(g.aliases[0]));
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(sum_m / n, sum_f / n - 0.2);
}

TEST(ModelZooTest, ModelsAreDeterministicAcrossInstances) {
  auto a = MakeModel(ModelKind::kBert);
  auto b = MakeModel(ModelKind::kBert);
  EXPECT_EQ(a->Embed("Toronto"), b->Embed("Toronto"));
}

// ---------------------------------------------------------------- ColumnEmbedder

TEST(ColumnEmbedderTest, SimilarContentColumnsCloserThanDifferent) {
  auto model = MakeModel(ModelKind::kMistral, 128);
  auto t1 = Table::FromRows("t1", {"city"},
                            {{Value::String("Berlin")},
                             {Value::String("Toronto")},
                             {Value::String("Barcelona")}});
  auto t2 = Table::FromRows("t2", {"place"},
                            {{Value::String("Berlin")},
                             {Value::String("Boston")},
                             {Value::String("Toronto")}});
  auto t3 = Table::FromRows("t3", {"rating"},
                            {{Value::Double(8.1)},
                             {Value::Double(3.3)},
                             {Value::Double(5.5)}});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  ColumnEmbedder embedder(model);
  Vec c1 = embedder.EmbedColumn(*t1, 0);
  Vec c2 = embedder.EmbedColumn(*t2, 0);
  Vec c3 = embedder.EmbedColumn(*t3, 0);
  EXPECT_GT(CosineSimilarity(c1, c2), CosineSimilarity(c1, c3) + 0.2);
}

TEST(ColumnEmbedderTest, AllNullColumnIsZeroVector) {
  auto model = MakeModel(ModelKind::kFastText, 64);
  auto t = Table::FromRows("t", {"x"}, {{Value::Null()}, {Value::Null()}});
  ASSERT_TRUE(t.ok());
  ColumnEmbedder embedder(model);
  EXPECT_DOUBLE_EQ(Norm(embedder.EmbedColumn(*t, 0)), 0.0);
}

TEST(ColumnEmbedderTest, HeaderBlendMovesSignature) {
  auto model = MakeModel(ModelKind::kMistral, 128);
  auto t = Table::FromRows("t", {"city"}, {{Value::String("Berlin")}});
  ASSERT_TRUE(t.ok());
  ColumnEmbedderOptions with;
  with.header_weight = 0.5;
  Vec no_header = ColumnEmbedder(model).EmbedColumn(*t, 0);
  Vec blended = ColumnEmbedder(model, with).EmbedColumn(*t, 0);
  EXPECT_GT(CosineDistance(no_header, blended), 0.01);
}

}  // namespace
}  // namespace lakefuzz
