// Tests for the session-oriented public API: LakeEngine, TableRegistry,
// request cancellation, streaming sinks, and parity with the legacy
// one-shot facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/engine.h"
#include "core/pipeline.h"
#include "table/csv.h"
#include "util/fault_injection.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

std::vector<Table> SmallIntegrationSet() {
  auto t1 = Table::FromRows("a", {"City", "Country"},
                            {{S("Berlinn"), S("Germany")},
                             {S("Toronto"), S("Canada")}});
  auto t2 = Table::FromRows("b", {"City", "VacRate"},
                            {{S("Berlin"), S("63%")},
                             {S("Lima"), S("71%")}});
  EXPECT_TRUE(t1.ok() && t2.ok());
  return {std::move(t1).value(), std::move(t2).value()};
}

std::unique_ptr<LakeEngine> MakeEngineWithSmallSet() {
  auto engine = LakeEngine::Create();
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto tables = SmallIntegrationSet();
  EXPECT_TRUE((*engine)->RegisterTable("a", tables[0]).ok());
  EXPECT_TRUE((*engine)->RegisterTable("b", tables[1]).ok());
  return std::move(engine).value();
}

/// Bit-level table equality: same shape, same column names, same cells.
/// (Table intentionally has no operator==; results are compared where it
/// matters, here.)
void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.schema().field(c).name, b.schema().field(c).name);
  }
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      EXPECT_TRUE(a.At(r, c) == b.At(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  std::string dir = testing::TempDir() + "/lakefuzz_engine";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.close();
  return path;
}

// ----------------------------------------------------------- EngineOptions

TEST(EngineOptionsTest, BuilderChainsAndValidates) {
  EngineOptions opts =
      EngineOptions().SetModel(ModelKind::kBert).SetNumThreads(4);
  EXPECT_EQ(opts.model, ModelKind::kBert);
  EXPECT_EQ(opts.num_threads, 4u);
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(EngineOptionsTest, RejectsAbsurdThreadCount) {
  EngineOptions opts = EngineOptions().SetNumThreads(size_t{1} << 40);
  EXPECT_EQ(opts.Validate().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(LakeEngine::Create(opts).code(), ErrorCode::kInvalidArgument);
}

TEST(EngineOptionsTest, RejectsZeroCacheShards) {
  EngineOptions opts;
  opts.embedding_cache.shards = 0;
  EXPECT_EQ(opts.Validate().code(), ErrorCode::kInvalidArgument);
}

// ----------------------------------------------------------- ErrorCode

TEST(ErrorCodeTest, NewTaxonomyEntries) {
  EXPECT_EQ(Status::Cancelled("x").code(), ErrorCode::kCancelled);
  EXPECT_EQ(Status::AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(Status::Cancelled("x").ToString(), "Cancelled: x");
  EXPECT_EQ(Status::AlreadyExists("x").ToString(), "AlreadyExists: x");
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "ResourceExhausted: x");
  Result<int> r = Status::Cancelled("stop");
  EXPECT_EQ(r.code(), ErrorCode::kCancelled);
  Result<int> ok = 3;
  EXPECT_EQ(ok.code(), ErrorCode::kOk);
}

// ----------------------------------------------------------- registry

TEST(TableRegistryTest, DuplicateNameRejected) {
  auto engine = MakeEngineWithSmallSet();
  auto tables = SmallIntegrationSet();
  Status dup = engine->RegisterTable("a", tables[0]);
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(engine->NumTables(), 2u);
}

TEST(TableRegistryTest, EmptyNameRejected) {
  auto engine = MakeEngineWithSmallSet();
  auto tables = SmallIntegrationSet();
  EXPECT_EQ(engine->RegisterTable("", tables[0]).code(),
            ErrorCode::kInvalidArgument);
}

TEST(TableRegistryTest, UnknownNameIsNotFound) {
  auto engine = MakeEngineWithSmallSet();
  auto result = engine->Integrate({"a", "missing"});
  EXPECT_EQ(result.code(), ErrorCode::kNotFound);
}

TEST(TableRegistryTest, NamesSortedAndUnregister) {
  auto engine = MakeEngineWithSmallSet();
  EXPECT_EQ(engine->TableNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(engine->UnregisterTable("a"));
  EXPECT_FALSE(engine->UnregisterTable("a"));
  EXPECT_EQ(engine->NumTables(), 1u);
}

TEST(TableRegistryTest, UnregisterIsTypedAndBumpsVersion) {
  // Registry-level contract: typed kNotFound on a miss, version bump on a
  // hit (so derived caches keyed on the version stop validating).
  TableRegistry registry;
  auto tables = SmallIntegrationSet();
  ASSERT_TRUE(registry.Register("a", std::move(tables[0])).ok());
  const uint64_t before = registry.version();
  EXPECT_EQ(registry.Unregister("missing").code(), ErrorCode::kNotFound);
  EXPECT_EQ(registry.version(), before);  // a miss mutates nothing
  EXPECT_TRUE(registry.Unregister("a").ok());
  EXPECT_GT(registry.version(), before);
  EXPECT_EQ(registry.Unregister("a").code(), ErrorCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);

  // Engine-level twin of the same taxonomy.
  auto engine = MakeEngineWithSmallSet();
  EXPECT_TRUE(engine->Unregister("a").ok());
  EXPECT_EQ(engine->Unregister("a").code(), ErrorCode::kNotFound);
}

TEST(TableRegistryTest, SchemaCacheInvalidatedOnUnregister) {
  // An alignment cached for {a, b} must stop validating once b is
  // unregistered — even when a table named "b" is registered again with a
  // different schema.
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;  // holistic alignment: the cacheable mode
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  EXPECT_EQ(engine->schema_cache_hits(), 1u);

  ASSERT_TRUE(engine->Unregister("b").ok());
  auto t2 = Table::FromRows("b", {"City", "Mayor"},
                            {{S("Berlin"), S("Kai")},
                             {S("Toronto"), S("Olivia")}});
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(engine->RegisterTable("b", std::move(t2).value()).ok());
  auto after = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(after.ok());
  // Recomputed, not served stale: no new hit, and the new column joined
  // the universal schema.
  EXPECT_EQ(engine->schema_cache_hits(), 1u);
  const auto& names = after->aligned.universal_names;
  EXPECT_TRUE(std::find(names.begin(), names.end(), "Mayor") != names.end());
}

// ----------------------------------------------------------- RegisterCsv

TEST(RegisterCsvTest, QuotedFieldsWithDelimitersAndNewlines) {
  std::string path = WriteTempFile(
      "quoted.csv",
      "City,Note\n\"Berlin, DE\",\"first line\nsecond line\"\n"
      "Lima,\"say \"\"hi\"\"\"\n");
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterCsv("quoted", path).ok());

  RequestOptions req;
  req.holistic_alignment = false;
  auto result = (*engine)->Integrate({"quoted"}, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->integrated.NumRows(), 2u);
  // Embedded delimiter and newline survive the trip into the registry.
  EXPECT_EQ(result->integrated.At(0, 0).ToString(), "Berlin, DE");
  EXPECT_EQ(result->integrated.At(0, 1).ToString(),
            "first line\nsecond line");
  EXPECT_EQ(result->integrated.At(1, 1).ToString(), "say \"hi\"");
}

TEST(RegisterCsvTest, EmptyFileRegistersEmptyTable) {
  std::string path = WriteTempFile("empty.csv", "");
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterCsv("empty", path).ok());
  RequestOptions req;
  req.holistic_alignment = false;
  auto result = (*engine)->Integrate({"empty"}, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->integrated.NumRows(), 0u);
  EXPECT_EQ(result->integrated.NumColumns(), 0u);
}

TEST(RegisterCsvTest, HeaderOnlyTableHasColumnsButNoRows) {
  std::string path = WriteTempFile("header_only.csv", "City,Country\n");
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterCsv("header_only", path).ok());
  // A header-only table still aligns by name against a populated one.
  auto tables = SmallIntegrationSet();
  ASSERT_TRUE((*engine)->RegisterTable("a", tables[0]).ok());
  RequestOptions req;
  req.holistic_alignment = false;
  auto result = (*engine)->Integrate({"header_only", "a"}, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->integrated.NumRows(), 2u);  // only table a's tuples
  EXPECT_EQ(result->integrated.NumColumns(), 2u);
}

TEST(RegisterCsvTest, DuplicateRegistryNameRejected) {
  std::string path = WriteTempFile("dup.csv", "X\n1\n");
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterCsv("t", path).ok());
  EXPECT_EQ((*engine)->RegisterCsv("t", path).code(),
            ErrorCode::kAlreadyExists);
}

TEST(RegisterCsvTest, MissingFileSurfacesIoError) {
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->RegisterCsv("x", "/nonexistent/x.csv").code(),
            ErrorCode::kIoError);
}

TEST(RegisterCsvTest, RegisteredTableIsRenamedToRegistryName) {
  std::string path = WriteTempFile("stem_name.csv", "X\n1\n2\n");
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterCsv("renamed", path).ok());
  EXPECT_EQ((*engine)->TableNames(), (std::vector<std::string>{"renamed"}));
}

// ----------------------------------------------------------- requests

// Acceptance: two Integrate calls on one engine are (a) bit-identical to
// the one-shot IntegrateTables path and (b) the second call reports
// embedding-cache hits with zero misses (full cross-call reuse).
TEST(LakeEngineTest, RepeatedIntegrateMatchesOneShotAndReusesCache) {
  auto tables = SmallIntegrationSet();
  PipelineOptions one_shot_opts;
  one_shot_opts.holistic_alignment = false;
  auto one_shot = IntegrateTables(tables, one_shot_opts);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();

  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  auto first = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // (a) Bit-identical outputs across the engine and the legacy facade.
  ExpectTablesIdentical(first->integrated, one_shot->integrated);
  ExpectTablesIdentical(second->integrated, one_shot->integrated);
  EXPECT_EQ(first->aligned.universal_names,
            one_shot->aligned.universal_names);

  // (b) Cross-call cache reuse: the second call re-embeds nothing.
  const auto& stats2 = second->report.match_stats;
  EXPECT_GT(stats2.embedding_cache_hits, 0u);
  EXPECT_EQ(stats2.embedding_cache_misses, 0u);
  // The first call populated the session cache (misses = distinct strings).
  EXPECT_GT(first->report.match_stats.embedding_cache_misses, 0u);
  EXPECT_EQ(engine->embedding_cache().misses(),
            first->report.match_stats.embedding_cache_misses);
}

TEST(LakeEngineTest, EmptyNameListRejected) {
  auto engine = MakeEngineWithSmallSet();
  EXPECT_EQ(engine->Integrate({}).code(), ErrorCode::kInvalidArgument);
}

TEST(LakeEngineTest, AlignedSchemaCachedPerNameSetAndInvalidated) {
  auto engine = MakeEngineWithSmallSet();
  ASSERT_TRUE(engine->Integrate({"a", "b"}).ok());  // holistic alignment
  EXPECT_EQ(engine->schema_cache_hits(), 0u);
  ASSERT_TRUE(engine->Integrate({"a", "b"}).ok());
  EXPECT_EQ(engine->schema_cache_hits(), 1u);
  // A different mode over the same names is its own entry.
  RequestOptions by_name;
  by_name.holistic_alignment = false;
  ASSERT_TRUE(engine->Integrate({"a", "b"}, by_name).ok());
  EXPECT_EQ(engine->schema_cache_hits(), 1u);
  ASSERT_TRUE(engine->Integrate({"a", "b"}, by_name).ok());
  EXPECT_EQ(engine->schema_cache_hits(), 2u);

  // Registry mutation invalidates: re-registering a changed "b" must
  // re-align (and the new table must actually be used).
  ASSERT_TRUE(engine->UnregisterTable("b"));
  auto t2 = Table::FromRows("b", {"City", "VacRate", "Mayor"},
                            {{S("Berlin"), S("63%"), S("Kai")},
                             {S("Lima"), S("71%"), S("Rafael")}});
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(engine->RegisterTable("b", std::move(t2).value()).ok());
  auto after = engine->Integrate({"a", "b"}, by_name);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(engine->schema_cache_hits(), 2u);  // recomputed, not served stale
  EXPECT_EQ(after->aligned.NumUniversal(), 4u);  // Mayor joined the schema
}

TEST(LakeEngineTest, SessionDictColumnCodesReusedAcrossCalls) {
  // Defer discovery sketching: this test observes the *request-driven*
  // cold → warm transition, which register-time sketching would pre-warm
  // (that eager path is covered by discovery_test).
  auto engine = LakeEngine::Create(EngineOptions().SetDiscovery(
      DiscoveryOptions().SetBuildAtRegister(false)));
  ASSERT_TRUE(engine.ok());
  {
    auto tables = SmallIntegrationSet();
    ASSERT_TRUE((*engine)->RegisterTable("a", tables[0]).ok());
    ASSERT_TRUE((*engine)->RegisterTable("b", tables[1]).ok());
  }
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;  // regular FD: registered snapshots reach the FD build
  auto first = (*engine)->Integrate({"a", "b"}, req);
  ASSERT_TRUE(first.ok());
  // Cold call interned the lake once (one copy per distinct value)...
  EXPECT_GT(first->report.fd_stats.value_copies, 0u);
  const auto cold = (*engine)->session_dict().stats();
  EXPECT_GT(cold.values_interned, 0u);

  auto second = (*engine)->Integrate({"a", "b"}, req);
  ASSERT_TRUE(second.ok());
  // ... and the warm call is zero-copy: every column a memo hit, no new
  // values interned (the acceptance criterion for BuildInterned).
  EXPECT_EQ(second->report.fd_stats.value_copies, 0u);
  const auto warm = (*engine)->session_dict().stats();
  EXPECT_EQ(warm.values_interned, cold.values_interned);
  EXPECT_GT(warm.column_hits, cold.column_hits);
  ExpectTablesIdentical(first->integrated, second->integrated);
}

TEST(LakeEngineTest, FuzzyPathBorrowsUntouchedTablesIntoSessionDict) {
  // In the fuzzy pipeline only tables the rewrite stage modified are
  // copied; untouched ones keep their registry identity, so their interned
  // column codes become cache hits on repeat calls.
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  const auto cold = engine->session_dict().stats();
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  const auto warm = engine->session_dict().stats();
  // "Berlinn" → "Berlin" rewrites table a, so table b (untouched) is the
  // one that must hit the memo on the second call.
  EXPECT_GT(warm.column_hits, cold.column_hits);
  // Rewritten temporaries never pollute the dictionary cache with new
  // values on the second pass: the rewrite is deterministic.
  EXPECT_EQ(warm.values_interned, cold.values_interned);
}

TEST(LakeEngineTest, ParallelEngineMatchesSerialEngine) {
  auto serial = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  auto serial_result = serial->Integrate({"a", "b"}, req);
  ASSERT_TRUE(serial_result.ok());

  auto parallel = LakeEngine::Create(EngineOptions().SetNumThreads(4));
  ASSERT_TRUE(parallel.ok());
  auto tables = SmallIntegrationSet();
  ASSERT_TRUE((*parallel)->RegisterTable("a", tables[0]).ok());
  ASSERT_TRUE((*parallel)->RegisterTable("b", tables[1]).ok());
  auto parallel_result = (*parallel)->Integrate({"a", "b"}, req);
  ASSERT_TRUE(parallel_result.ok());
  ExpectTablesIdentical(parallel_result->integrated, serial_result->integrated);

  // parallel_fd=false forces the serial FD executor on a pooled engine;
  // output is identical either way.
  RequestOptions serial_fd = req;
  serial_fd.parallel_fd = false;
  auto forced_serial = (*parallel)->Integrate({"a", "b"}, serial_fd);
  ASSERT_TRUE(forced_serial.ok());
  ExpectTablesIdentical(forced_serial->integrated, serial_result->integrated);
}

TEST(LakeEngineTest, RegularFdMode) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  auto result = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->integrated.NumRows(), 4u);  // Berlinn stays fragmented
}

TEST(LakeEngineTest, ReportCoversAllStages) {
  auto engine = MakeEngineWithSmallSet();
  auto result = engine->Integrate({"a", "b"});  // holistic → align work > 0
  ASSERT_TRUE(result.ok());
  const FuzzyFdReport& report = result->report;
  EXPECT_GT(report.align_seconds, 0.0);
  EXPECT_GE(report.match_seconds, 0.0);
  // The single total now folds alignment in (satellite: no orphan stage).
  EXPECT_GE(report.total_seconds(),
            report.align_seconds + report.match_seconds +
                report.rewrite_seconds + report.fd_seconds);
  EXPECT_DOUBLE_EQ(result->align_seconds, report.align_seconds);
}

TEST(LakeEngineTest, TidOrderFollowsNameOrder) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.include_provenance = true;
  auto ab = engine->Integrate({"a", "b"}, req);
  auto ba = engine->Integrate({"b", "a"}, req);
  ASSERT_TRUE(ab.ok() && ba.ok());
  // Same integration either way, but TID numbering follows request order.
  EXPECT_EQ(ab->integrated.NumRows(), ba->integrated.NumRows());
  EXPECT_EQ(ab->integrated.schema().field(0).name, "TIDs");
}

// ----------------------------------------------------------- progress

TEST(LakeEngineTest, ProgressEventsCoverStages) {
  auto engine = MakeEngineWithSmallSet();
  std::vector<Stage> seen;
  RequestOptions req;
  req.holistic_alignment = false;
  req.progress = [&seen](const ProgressEvent& e) {
    if (seen.empty() || seen.back() != e.stage) seen.push_back(e.stage);
  };
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  // Stage order: align, match, rewrite, fd_build, fd_enumerate, fd_subsume,
  // emit.
  ASSERT_GE(seen.size(), 6u);
  EXPECT_EQ(seen.front(), Stage::kAlign);
  EXPECT_EQ(seen.back(), Stage::kEmit);
  EXPECT_NE(std::find(seen.begin(), seen.end(), Stage::kMatch), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), Stage::kFdEnumerate),
            seen.end());
}

// ----------------------------------------------------------- cancellation

// Acceptance: a CancelToken fired mid-FD (from the progress callback at
// the FD stage boundary) surfaces ErrorCode::kCancelled without crashing.
TEST(LakeEngineTest, CancelTokenFiredMidFdReturnsCancelled) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.cancel = CancelToken::Create();
  CancelToken token = req.cancel;  // copies share the flag
  req.progress = [token](const ProgressEvent& e) {
    if (e.stage == Stage::kFdEnumerate) token.Cancel();
  };
  auto result = engine->Integrate({"a", "b"}, req);
  EXPECT_EQ(result.code(), ErrorCode::kCancelled);

  // The session survives a cancelled request: the same call succeeds next
  // time without the trigger-happy callback — and answers byte-identically
  // to an engine that never saw the failure.
  RequestOptions clean;
  clean.holistic_alignment = false;
  auto after = engine->Integrate({"a", "b"}, clean);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto fresh = MakeEngineWithSmallSet()->Integrate({"a", "b"}, clean);
  ASSERT_TRUE(fresh.ok());
  ExpectTablesIdentical(after->integrated, fresh->integrated);
}

// ----------------------------------------------- reuse after failure
//
// The engine-reuse contract for every lifecycle failure mode: after a
// request dies of X, the next clean request on the SAME engine must be
// byte-identical to a fresh engine's answer (no leaked admission slots, no
// poisoned caches, no half-rewritten registry snapshots).

void ExpectCleanRequestMatchesFreshEngine(LakeEngine* survivor) {
  RequestOptions clean;
  clean.holistic_alignment = false;
  auto after = survivor->Integrate({"a", "b"}, clean);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto fresh = MakeEngineWithSmallSet()->Integrate({"a", "b"}, clean);
  ASSERT_TRUE(fresh.ok());
  ExpectTablesIdentical(after->integrated, fresh->integrated);
}

TEST(EngineReuseTest, AfterDeadlineExceeded) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.deadline = Deadline::AfterMillis(50);
  req.progress = [](const ProgressEvent& e) {
    if (e.stage == Stage::kFdBuild && e.done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  };
  EXPECT_EQ(engine->Integrate({"a", "b"}, req).code(),
            ErrorCode::kDeadlineExceeded);
  ExpectCleanRequestMatchesFreshEngine(engine.get());
}

TEST(EngineReuseTest, AfterResourceExhausted) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  // A one-tuple cap on the 4-row result trips the budget post-subsumption.
  req.budget.max_result_tuples = 1;
  EXPECT_EQ(engine->Integrate({"a", "b"}, req).code(),
            ErrorCode::kResourceExhausted);
  ExpectCleanRequestMatchesFreshEngine(engine.get());
}

TEST(EngineReuseTest, AfterTruncatedRequest) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.budget.max_result_tuples = 1;
  req.budget_policy = BudgetPolicy::kTruncate;
  auto partial = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->report.truncation.truncated);
  ExpectCleanRequestMatchesFreshEngine(engine.get());
}

#ifdef LAKEFUZZ_FAULT_POINTS
TEST(EngineReuseTest, AfterInjectedMidFdFault) {
  auto engine = MakeEngineWithSmallSet();
  FaultInjector::Instance().ArmPoint("fd/build", 0);
  RequestOptions req;
  req.holistic_alignment = false;
  auto faulted = engine->Integrate({"a", "b"}, req);
  FaultInjector::Instance().Disarm();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.code(), ErrorCode::kInternal);
  ExpectCleanRequestMatchesFreshEngine(engine.get());
}
#endif  // LAKEFUZZ_FAULT_POINTS

TEST(LakeEngineTest, PreCancelledTokenShortCircuits) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.cancel = CancelToken::Create();
  req.cancel.Cancel();
  auto result = engine->Integrate({"a", "b"}, req);
  EXPECT_EQ(result.code(), ErrorCode::kCancelled);
}

TEST(LakeEngineTest, CancelDuringMatchReturnsCancelled) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.cancel = CancelToken::Create();
  CancelToken token = req.cancel;
  req.progress = [token](const ProgressEvent& e) {
    if (e.stage == Stage::kMatch) token.Cancel();
  };
  auto result = engine->Integrate({"a", "b"}, req);
  EXPECT_EQ(result.code(), ErrorCode::kCancelled);
}

TEST(CancelTokenTest, InertAndLiveSemantics) {
  CancelToken inert;
  EXPECT_FALSE(inert.can_cancel());
  inert.Cancel();  // no-op, no crash
  EXPECT_FALSE(inert.cancelled());

  CancelToken live = CancelToken::Create();
  CancelToken copy = live;
  EXPECT_TRUE(live.can_cancel());
  EXPECT_FALSE(live.cancelled());
  copy.Cancel();
  EXPECT_TRUE(live.cancelled());  // shared flag
}

// ----------------------------------------------------------- streaming

class CollectingSink : public RowSink {
 public:
  Status Begin(const std::vector<std::string>& universal_names) override {
    universal_names_ = universal_names;
    return Status::OK();
  }
  Status OnBatch(const std::vector<FdResultTuple>& batch) override {
    batch_sizes_.push_back(batch.size());
    tuples_.insert(tuples_.end(), batch.begin(), batch.end());
    return Status::OK();
  }
  Status End(const FuzzyFdReport& report) override {
    (void)report;
    ended_ = true;
    return Status::OK();
  }

  std::vector<std::string> universal_names_;
  std::vector<FdResultTuple> tuples_;
  std::vector<size_t> batch_sizes_;
  bool ended_ = false;
};

TEST(IntegrateToSinkTest, StreamsSameTuplesAsIntegrate) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  auto full = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(full.ok());

  CollectingSink sink;
  req.batch_rows = 2;  // 3 result rows → 2 batches
  auto report = engine->IntegrateToSink({"a", "b"}, &sink, req);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(sink.ended_);
  EXPECT_EQ(sink.universal_names_, full->aligned.universal_names);
  ASSERT_EQ(sink.tuples_.size(), full->integrated.NumRows());
  EXPECT_EQ(sink.batch_sizes_, (std::vector<size_t>{2, 1}));
  EXPECT_EQ(report->fd_stats.results, sink.tuples_.size());
  EXPECT_GE(report->align_seconds, 0.0);
  // Tuples decode to the same cells the materialized table holds.
  Table streamed = FdResultsToTable(sink.tuples_,
                                    sink.universal_names_, "streamed");
  for (size_t r = 0; r < streamed.NumRows(); ++r) {
    for (size_t c = 0; c < streamed.NumColumns(); ++c) {
      EXPECT_TRUE(streamed.At(r, c) == full->integrated.At(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(IntegrateToSinkTest, CancelFiredFromSinkStopsStreamPromptly) {
  // A sink that fires the request's token from OnBatch: the decode-emit
  // loop's per-batch checkpoint must surface kCancelled before the next
  // batch, and End() must never run.
  class CancellingSink : public CollectingSink {
   public:
    explicit CancellingSink(CancelToken token) : token_(std::move(token)) {}
    Status OnBatch(const std::vector<FdResultTuple>& batch) override {
      token_.Cancel();
      return CollectingSink::OnBatch(batch);
    }

   private:
    CancelToken token_;
  };

  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;  // 4 result tuples
  req.batch_rows = 1;
  req.cancel = CancelToken::Create();
  CancellingSink sink(req.cancel);
  auto report = engine->IntegrateToSink({"a", "b"}, &sink, req);
  EXPECT_EQ(report.code(), ErrorCode::kCancelled);
  EXPECT_EQ(sink.tuples_.size(), 1u);  // first batch only
  EXPECT_FALSE(sink.ended_);
}

TEST(IntegrateToSinkTest, SinkErrorAbortsRequest) {
  class FailingSink : public RowSink {
   public:
    Status OnBatch(const std::vector<FdResultTuple>&) override {
      return Status::Internal("sink full");
    }
  };
  auto engine = MakeEngineWithSmallSet();
  FailingSink sink;
  RequestOptions req;
  req.holistic_alignment = false;
  auto report = engine->IntegrateToSink({"a", "b"}, &sink, req);
  EXPECT_EQ(report.code(), ErrorCode::kInternal);
}

TEST(IntegrateToSinkTest, RejectsNullSinkAndZeroBatch) {
  auto engine = MakeEngineWithSmallSet();
  EXPECT_EQ(engine->IntegrateToSink({"a", "b"}, nullptr).code(),
            ErrorCode::kInvalidArgument);
  CollectingSink sink;
  RequestOptions req;
  req.batch_rows = 0;
  EXPECT_EQ(engine->IntegrateToSink({"a", "b"}, &sink, req).code(),
            ErrorCode::kInvalidArgument);
}

TEST(IntegrateToSinkTest, RegularFdStreamsToo) {
  auto engine = MakeEngineWithSmallSet();
  CollectingSink sink;
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.batch_rows = 3;
  auto report = engine->IntegrateToSink({"a", "b"}, &sink, req);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(sink.tuples_.size(), 4u);  // regular FD keeps Berlinn apart
}

// ----------------------------------------------------------- shims

TEST(PipelineShimTest, FacadeStillWorksOverTemporaryEngine) {
  PipelineOptions opts;
  opts.holistic_alignment = false;
  auto result = IntegrateTables(SmallIntegrationSet(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->integrated.NumRows(), 3u);
  EXPECT_GT(result->report.values_rewritten, 0u);
  // The deprecated top-level field mirrors the report's stage accounting.
  EXPECT_DOUBLE_EQ(result->align_seconds, result->report.align_seconds);
}

}  // namespace
}  // namespace lakefuzz
