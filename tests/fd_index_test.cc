// Tests for the dictionary-encoded FD core: ValueDict interning, the CSR
// posting-list join graph (validated against a brute-force materialized
// adjacency), the parallel index build, the non-quadratic memory guarantee,
// and thread-count invariance of the full pipeline on a corrupted-IMDB
// fixture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "core/fuzzy_fd.h"
#include "datagen/corruption.h"
#include "datagen/imdb.h"
#include "embedding/model_zoo.h"
#include "fd/full_disjunction.h"
#include "fd/parallel.h"
#include "fd/problem.h"
#include "fd/value_dict.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

// ---------------------------------------------------------------- ValueDict

TEST(ValueDictTest, InternAssignsDenseCodesInFirstSeenOrder) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value::Null()), ValueDict::kNullCode);
  uint32_t a = dict.Intern(S("alpha"));
  uint32_t b = dict.Intern(S("beta"));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(dict.Intern(S("alpha")), a);  // idempotent
  EXPECT_EQ(dict.NumDistinct(), 2u);
  EXPECT_EQ(dict.Decode(a), S("alpha"));
  EXPECT_EQ(dict.Decode(b), S("beta"));
  EXPECT_TRUE(dict.Decode(ValueDict::kNullCode).is_null());
}

TEST(ValueDictTest, TypeSensitiveLikeValueEquality) {
  // FD joins on value identity; Int(1), Double(1.0), String("1") must not
  // alias under interning.
  ValueDict dict;
  uint32_t i = dict.Intern(Value::Int(1));
  uint32_t d = dict.Intern(Value::Double(1.0));
  uint32_t s = dict.Intern(S("1"));
  EXPECT_NE(i, d);
  EXPECT_NE(i, s);
  EXPECT_NE(d, s);
  EXPECT_EQ(dict.Find(Value::Int(1)), i);
  EXPECT_EQ(dict.Find(Value::Double(1.0)), d);
  EXPECT_EQ(dict.Find(S("missing")), ValueDict::kNullCode);
}

TEST(ValueDictTest, SurvivesRehashGrowth) {
  ValueDict dict;
  std::vector<uint32_t> codes;
  for (int i = 0; i < 5000; ++i) {
    codes.push_back(dict.Intern(Value::Int(i)));
  }
  EXPECT_EQ(dict.NumDistinct(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.Intern(Value::Int(i)), codes[i]);
    EXPECT_EQ(dict.Decode(codes[i]), Value::Int(i));
  }
}

// ------------------------------------------------- CSR vs. brute adjacency

struct IndexShape {
  size_t num_tables;
  size_t rows_per_table;
  size_t num_columns;
  size_t value_domain;
  uint64_t seed;
};

FdProblem RandomProblem(const IndexShape& shape, Rng* rng) {
  std::vector<std::string> names;
  for (size_t c = 0; c < shape.num_columns; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  FdProblem problem(shape.num_columns, names);
  for (size_t l = 0; l < shape.num_tables; ++l) {
    for (size_t r = 0; r < shape.rows_per_table; ++r) {
      std::vector<Value> vals(shape.num_columns);
      for (size_t c = 0; c < shape.num_columns; ++c) {
        if (rng->Bernoulli(0.35)) continue;  // null
        vals[c] = Value::String(std::string(
            1, static_cast<char>('a' + rng->Uniform(shape.value_domain))));
      }
      EXPECT_TRUE(
          problem.AddTuple(static_cast<uint32_t>(l), std::move(vals)).ok());
    }
  }
  return problem;
}

/// The legacy definition, materialized pairwise: i and j are adjacent iff
/// they share an equal non-null value on some column.
std::vector<std::vector<uint32_t>> BruteAdjacency(const FdProblem& problem) {
  const size_t n = problem.num_tuples();
  std::vector<std::vector<uint32_t>> adj(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const auto& a = problem.tuples()[i].values;
      const auto& b = problem.tuples()[j].values;
      for (size_t c = 0; c < problem.num_columns(); ++c) {
        if (!a[c].is_null() && !b[c].is_null() && a[c] == b[c]) {
          adj[i].push_back(j);
          adj[j].push_back(i);
          break;
        }
      }
    }
  }
  return adj;
}

/// Connected components over the brute adjacency (BFS), in the same
/// canonical form as FdProblem::Components().
std::vector<std::vector<uint32_t>> BruteComponents(
    const std::vector<std::vector<uint32_t>>& adj) {
  const size_t n = adj.size();
  std::vector<char> visited(n, 0);
  std::vector<std::vector<uint32_t>> comps;
  for (uint32_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    std::vector<uint32_t> comp;
    std::vector<uint32_t> frontier{start};
    visited[start] = 1;
    while (!frontier.empty()) {
      uint32_t t = frontier.back();
      frontier.pop_back();
      comp.push_back(t);
      for (uint32_t nb : adj[t]) {
        if (!visited[nb]) {
          visited[nb] = 1;
          frontier.push_back(nb);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

class CsrIndexProperty : public ::testing::TestWithParam<IndexShape> {};

TEST_P(CsrIndexProperty, NeighborsAndComponentsMatchBruteForce) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 10; ++trial) {
    FdProblem problem = RandomProblem(GetParam(), &rng);
    problem.BuildIndex();
    auto brute = BruteAdjacency(problem);
    for (uint32_t tid = 0; tid < problem.num_tuples(); ++tid) {
      EXPECT_EQ(problem.Neighbors(tid), brute[tid])
          << "trial " << trial << " tid " << tid;
    }
    EXPECT_EQ(problem.Components(), BruteComponents(brute)) << trial;
  }
}

TEST_P(CsrIndexProperty, ParallelBuildMatchesSerial) {
  Rng rng(GetParam().seed ^ 0xABCD);
  for (int trial = 0; trial < 5; ++trial) {
    FdProblem serial = RandomProblem(GetParam(), &rng);
    FdProblem parallel = serial;
    serial.BuildIndex();
    ThreadPool pool(4);
    parallel.BuildIndex(&pool);
    ASSERT_EQ(serial.num_tuples(), parallel.num_tuples());
    for (uint32_t tid = 0; tid < serial.num_tuples(); ++tid) {
      EXPECT_EQ(serial.Neighbors(tid), parallel.Neighbors(tid)) << tid;
      // Code rows must be identical too: interning order is defined by the
      // problem, not the shard schedule.
      for (size_t c = 0; c < serial.num_columns(); ++c) {
        EXPECT_EQ(serial.CodeRow(tid)[c], parallel.CodeRow(tid)[c]);
      }
    }
    EXPECT_EQ(serial.Components(), parallel.Components());
    EXPECT_EQ(serial.index_stats().posting_entries,
              parallel.index_stats().posting_entries);
    EXPECT_EQ(serial.index_stats().posting_lists,
              parallel.index_stats().posting_lists);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsrIndexProperty,
    ::testing::Values(IndexShape{2, 4, 3, 2, 101}, IndexShape{3, 6, 3, 3, 202},
                      IndexShape{4, 8, 4, 2, 303}, IndexShape{3, 10, 5, 4, 404},
                      IndexShape{5, 5, 4, 6, 505}, IndexShape{2, 12, 2, 3, 606}),
    [](const ::testing::TestParamInfo<IndexShape>& info) {
      const auto& p = info.param;
      return "t" + std::to_string(p.num_tables) + "r" +
             std::to_string(p.rows_per_table) + "c" +
             std::to_string(p.num_columns) + "d" +
             std::to_string(p.value_domain);
    });

// --------------------------------------------------- multi-shard at scale

TEST(CsrIndexShardedTest, LargeProblemParallelBuildMatchesSerial) {
  // Above PostingShardCount's gate (2^16 cells) the pooled build takes the
  // truly sharded path: concurrent posting-map scans, AtomicUnionFind
  // merge, parallel CSR range fill. 30k tuples × 6 columns = 180k cells →
  // 3 shards with an 8-thread pool. Everything observable must equal the
  // serial build.
  constexpr uint32_t kTuples = 30000;
  constexpr size_t kCols = 6;
  std::vector<std::string> names;
  for (size_t c = 0; c < kCols; ++c) names.push_back("c" + std::to_string(c));
  FdProblem serial(kCols, names);
  Rng rng(777);
  for (uint32_t i = 0; i < kTuples; ++i) {
    std::vector<Value> vals(kCols);
    for (size_t c = 0; c < kCols; ++c) {
      if (rng.Bernoulli(0.3)) continue;  // null
      // ~5k distinct join values → thousands of multi-tuple postings.
      vals[c] = Value::Int(static_cast<int64_t>(rng.Uniform(5000)));
    }
    ASSERT_TRUE(serial.AddTuple(i % 5, std::move(vals)).ok());
  }
  FdProblem parallel = serial;
  serial.BuildIndex();
  ThreadPool pool(8);
  parallel.BuildIndex(&pool);
  EXPECT_GT(serial.index_stats().posting_entries, size_t{1} << 16);
  EXPECT_EQ(serial.index_stats().posting_lists,
            parallel.index_stats().posting_lists);
  EXPECT_EQ(serial.index_stats().posting_entries,
            parallel.index_stats().posting_entries);
  EXPECT_EQ(serial.index_stats().distinct_values,
            parallel.index_stats().distinct_values);
  ASSERT_EQ(serial.Components(), parallel.Components());
  for (uint32_t tid = 0; tid < kTuples; tid += 97) {
    ASSERT_EQ(serial.Neighbors(tid), parallel.Neighbors(tid)) << tid;
  }
  for (uint32_t tid = 0; tid < kTuples; ++tid) {
    ASSERT_EQ(0, std::memcmp(serial.CodeRow(tid), parallel.CodeRow(tid),
                             kCols * sizeof(uint32_t)))
        << tid;
  }
}

TEST(CsrIndexShardedTest, LargeSubsumptionShardedMatchesSerial) {
  // Same gate for EliminateSubsumedCodes: 24k tuples × 6 columns keeps the
  // pooled run on the multi-shard posting path. Codes are drawn from a
  // small domain with frequent nulls so duplicates and genuine subsumption
  // chains both occur.
  constexpr uint32_t kTuples = 24000;
  constexpr size_t kCols = 6;
  Rng rng(888);
  std::vector<FdCodeTuple> tuples(kTuples);
  for (uint32_t i = 0; i < kTuples; ++i) {
    tuples[i].codes.resize(kCols, ValueDict::kNullCode);
    for (size_t c = 0; c < kCols; ++c) {
      if (rng.Bernoulli(0.4)) continue;
      tuples[i].codes[c] = 1 + static_cast<uint32_t>(rng.Uniform(40));
    }
    tuples[i].tids = {i};
  }
  auto serial = EliminateSubsumedCodes(tuples);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ThreadPool pool(8);
  auto parallel = EliminateSubsumedCodes(tuples, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_GT(serial->size(), 0u);
  ASSERT_LT(serial->size(), static_cast<size_t>(kTuples));  // some eliminated
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    ASSERT_EQ((*serial)[i], (*parallel)[i]) << i;
  }
}

TEST(CsrIndexShardedTest, EliminateSubsumedCodesAllNullTuples) {
  // Mirrors SubsumptionTest.AllNullTuples on the code path: all-null
  // duplicates collapse to one survivor; any non-null tuple eliminates it.
  auto make = [](std::vector<uint32_t> codes, uint32_t tid) {
    FdCodeTuple t;
    t.codes = std::move(codes);
    t.tids = {tid};
    return t;
  };
  auto only_nulls =
      EliminateSubsumedCodes({make({0, 0}, 0), make({0, 0}, 1)});
  ASSERT_TRUE(only_nulls.ok());
  ASSERT_EQ(only_nulls->size(), 1u);
  auto mixed = EliminateSubsumedCodes({make({0, 0}, 0), make({5, 0}, 1)});
  ASSERT_TRUE(mixed.ok());
  ASSERT_EQ(mixed->size(), 1u);
  EXPECT_EQ((*mixed)[0].codes[0], 5u);
}

// ------------------------------------------------------ non-quadratic index

TEST(CsrIndexStressTest, SharedValueByManyTuplesStaysLinear) {
  // One value shared by 10k tuples: the legacy adjacency materialized
  // ~10^8 edges here; the CSR index must store one posting list of 10k
  // entries. Runs under ASan in CI, so an accidental O(k²) regression blows
  // the time/memory budget immediately.
  constexpr uint32_t kTuples = 10000;
  FdProblem problem(2, {"shared", "unique"});
  for (uint32_t i = 0; i < kTuples; ++i) {
    ASSERT_TRUE(problem
                    .AddTuple(i % 2, {S("hub"),
                                      Value::Int(static_cast<int64_t>(i))})
                    .ok());
  }
  problem.BuildIndex();
  // One multi-tuple posting list ("hub") with kTuples entries; the unique
  // ints contribute none.
  EXPECT_EQ(problem.index_stats().posting_lists, 1u);
  EXPECT_EQ(problem.index_stats().posting_entries, kTuples);
  EXPECT_EQ(problem.index_stats().distinct_values, 1u + kTuples);
  ASSERT_EQ(problem.Components().size(), 1u);
  EXPECT_EQ(problem.Components()[0].size(), kTuples);
  EXPECT_EQ(problem.Neighbors(0).size(), kTuples - 1);
  EXPECT_EQ(problem.Neighbors(kTuples / 2).size(), kTuples - 1);
}

// ------------------------------------------- thread-count output invariance

/// A small corrupted-IMDB instance: the generator's equi-join topology with
/// seeded syntactic noise injected into a fraction of the string cells.
std::vector<Table> CorruptedImdbTables() {
  ImdbOptions gen;
  gen.target_tuples = 600;
  ImdbBenchmark bench = GenerateImdb(gen);
  Rng rng(20260730);
  CorruptionConfig config;
  config.typo = 1.0;
  config.case_noise = 0.5;
  for (Table& t : bench.tables) {
    for (size_t r = 0; r < t.NumRows(); ++r) {
      for (size_t c = 0; c < t.NumColumns(); ++c) {
        const Value& v = t.At(r, c);
        if (v.is_null() || v.type() != ValueType::kString) continue;
        if (!rng.Bernoulli(0.08)) continue;
        t.Set(r, c, Value::String(Corrupt(&rng, v.AsString(), config)));
      }
    }
  }
  return std::move(bench.tables);
}

TEST(ThreadInvarianceTest, CorruptedImdbIdenticalAcrossThreadCounts) {
  auto tables = CorruptedImdbTables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());

  FuzzyFdOptions serial_opts;
  serial_opts.matcher.model = MakeModel(ModelKind::kMistral);
  auto reference =
      FuzzyFullDisjunction(serial_opts).RunToTuples(tables, *aligned);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->tuples.size(), 0u);

  for (size_t threads : {1u, 2u, 8u}) {
    FuzzyFdOptions opts = serial_opts;
    opts.parallel = true;
    opts.num_threads = threads;
    auto result = FuzzyFullDisjunction(opts).RunToTuples(tables, *aligned);
    ASSERT_TRUE(result.ok()) << threads;
    ASSERT_EQ(result->tuples.size(), reference->tuples.size()) << threads;
    for (size_t i = 0; i < result->tuples.size(); ++i) {
      EXPECT_EQ(result->tuples[i].values, reference->tuples[i].values)
          << "threads " << threads << " tuple " << i;
      EXPECT_EQ(result->tuples[i].tids, reference->tuples[i].tids)
          << "threads " << threads << " tuple " << i;
    }
  }
}

TEST(ThreadInvarianceTest, RegularFdOnCorruptedImdbMatchesSerial) {
  auto tables = CorruptedImdbTables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFdReport serial_report;
  auto serial = RegularFdBaseline(tables, *aligned, FdOptions(),
                                  /*parallel=*/false, 0, &serial_report);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial_report.fd_stats.posting_lists, 0u);
  for (size_t threads : {2u, 8u}) {
    auto parallel = RegularFdBaseline(tables, *aligned, FdOptions(),
                                      /*parallel=*/true, threads, nullptr);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->tuples.size(), serial->tuples.size());
    for (size_t i = 0; i < parallel->tuples.size(); ++i) {
      EXPECT_EQ(parallel->tuples[i].values, serial->tuples[i].values);
      EXPECT_EQ(parallel->tuples[i].tids, serial->tuples[i].tids);
    }
  }
}

}  // namespace
}  // namespace lakefuzz
