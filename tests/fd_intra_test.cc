// Tests for PR 4's FD hot-path work: intra-component parallel enumeration
// (thread-count invariance on a single giant component, cancellation and
// budget exhaustion mid-subtree) and zero-copy interning
// (FdProblem::BuildInterned vs the legacy padded Build, session-dict column
// caching, concurrent decode-while-intern safety).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/fuzzy_fd.h"
#include "fd/full_disjunction.h"
#include "fd/parallel.h"
#include "fd/problem.h"
#include "fd/session_dict.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

Value S(const std::string& s) { return Value::String(s); }

/// A lake whose join graph collapses into ONE giant component: every tuple
/// shares the constant "hub" value (the shape fuzzy rewriting produces when
/// a corrupted shared key gets merged), while the "key" column partitions
/// consistency. Maximal sets = one tuple per table, all agreeing on key —
/// (rows_per_key)^num_tables combinations per key, so the branch-and-
/// exclude tree is wide at the top and bushy below: exactly the skew the
/// intra-component executor is for.
std::vector<Table> GiantComponentTables(size_t num_tables, size_t num_keys,
                                        size_t rows_per_key) {
  std::vector<Table> tables;
  for (size_t l = 0; l < num_tables; ++l) {
    Table t("t" + std::to_string(l),
            Schema::FromNames({"key", "hub", "p" + std::to_string(l)}));
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t r = 0; r < rows_per_key; ++r) {
        EXPECT_TRUE(t.AppendRow({S("k" + std::to_string(k)), S("hub"),
                                 S(StrFormat("v%zu_%zu_%zu", l, k, r))})
                        .ok());
      }
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

Result<FdProblem> BuildGiant(const std::vector<Table>& tables) {
  auto aligned = AlignByName(tables);
  EXPECT_TRUE(aligned.ok());
  return FdProblem::Build(tables, *aligned);
}

// ------------------------------------------ intra-component parallelism

TEST(IntraComponentTest, SingleGiantComponentByteIdenticalAcrossThreads) {
  auto tables = GiantComponentTables(4, 24, 2);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());

  // Reference: the sequential executor.
  FdProblem serial_problem = *problem;
  FdStats serial_stats;
  auto serial =
      FullDisjunction().RunCodes(&serial_problem, &serial_stats);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->size(), 0u);
  ASSERT_EQ(serial_stats.num_components, 1u);
  ASSERT_EQ(serial_stats.largest_component,
            serial_problem.num_tuples());

  for (size_t threads : {1u, 2u, 8u}) {
    FdProblem p = *problem;
    ParallelFdOptions opts;
    opts.num_threads = threads;
    // Force the intra path for any component on multi-thread runs.
    opts.fd.intra_component_min_size = 2;
    FdStats stats;
    auto parallel = ParallelFullDisjunction(opts).RunCodes(&p, &stats);
    ASSERT_TRUE(parallel.ok()) << threads;
    ASSERT_EQ(parallel->size(), serial->size()) << threads;
    for (size_t i = 0; i < serial->size(); ++i) {
      ASSERT_EQ((*parallel)[i].codes, (*serial)[i].codes)
          << "threads " << threads << " tuple " << i;
      ASSERT_EQ((*parallel)[i].tids, (*serial)[i].tids)
          << "threads " << threads << " tuple " << i;
    }
    EXPECT_EQ(stats.search_nodes, serial_stats.search_nodes) << threads;
    if (threads > 1) {
      // The giant component must actually have been split into subtree
      // tasks, not fall back to serial enumeration.
      EXPECT_GT(stats.intra_tasks, 0u) << threads;
    }
  }
}

TEST(IntraComponentTest, ArenaOnOffByteIdenticalAcrossThreads) {
  // FdOptions::scratch_arena must be a pure allocation knob: identical
  // tuples AND identical search_nodes with the arena on or off, at every
  // thread count (ArenaVector's heap fallback keeps one code path).
  auto tables = GiantComponentTables(4, 24, 2);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());

  FdProblem ref_problem = *problem;
  FdStats ref_stats;
  auto reference = FullDisjunction().RunCodes(&ref_problem, &ref_stats);
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(ref_stats.arena_peak_bytes, 0u);  // default: arena on

  for (bool arena_on : {false, true}) {
    for (size_t threads : {1u, 2u, 8u}) {
      FdProblem p = *problem;
      ParallelFdOptions opts;
      opts.num_threads = threads;
      opts.fd.intra_component_min_size = 2;
      opts.fd.scratch_arena = arena_on;
      FdStats stats;
      auto result = ParallelFullDisjunction(opts).RunCodes(&p, &stats);
      ASSERT_TRUE(result.ok()) << arena_on << " " << threads;
      ASSERT_EQ(result->size(), reference->size())
          << arena_on << " " << threads;
      for (size_t i = 0; i < reference->size(); ++i) {
        ASSERT_EQ((*result)[i].codes, (*reference)[i].codes)
            << "arena " << arena_on << " threads " << threads;
        ASSERT_EQ((*result)[i].tids, (*reference)[i].tids)
            << "arena " << arena_on << " threads " << threads;
      }
      EXPECT_EQ(stats.search_nodes, ref_stats.search_nodes)
          << arena_on << " " << threads;
      if (!arena_on) EXPECT_EQ(stats.arena_peak_bytes, 0u);
    }
  }
}

TEST(IntraComponentTest, AdaptiveGateOnOffByteIdenticalAcrossThreads) {
  // The adaptive split gate only changes WHICH tasks split, never what any
  // task computes, so output and search_nodes must match the serial
  // reference whether the gate is adaptive (default multiple) or disabled
  // (0 restores the static low-water heuristic).
  auto tables = GiantComponentTables(4, 24, 2);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());

  FdProblem ref_problem = *problem;
  FdStats ref_stats;
  auto reference = FullDisjunction().RunCodes(&ref_problem, &ref_stats);
  ASSERT_TRUE(reference.ok());

  for (double multiple : {0.0, 8.0}) {
    for (size_t threads : {2u, 8u}) {
      FdProblem p = *problem;
      ParallelFdOptions opts;
      opts.num_threads = threads;
      opts.fd.intra_component_min_size = 2;
      opts.fd.intra_split_overhead_multiple = multiple;
      FdStats stats;
      auto result = ParallelFullDisjunction(opts).RunCodes(&p, &stats);
      ASSERT_TRUE(result.ok()) << multiple << " " << threads;
      ASSERT_EQ(result->size(), reference->size())
          << multiple << " " << threads;
      for (size_t i = 0; i < reference->size(); ++i) {
        ASSERT_EQ((*result)[i].codes, (*reference)[i].codes)
            << "multiple " << multiple << " threads " << threads;
        ASSERT_EQ((*result)[i].tids, (*reference)[i].tids)
            << "multiple " << multiple << " threads " << threads;
      }
      EXPECT_EQ(stats.search_nodes, ref_stats.search_nodes)
          << multiple << " " << threads;
      EXPECT_GT(stats.intra_tasks, 0u) << multiple << " " << threads;
      // Every executed task is profiled: the spawned subtree tasks plus
      // the component's root task.
      EXPECT_EQ(stats.task_profile.tasks, stats.intra_tasks + 1);
      EXPECT_GT(stats.task_profile.busy_ns, 0u);
    }
  }
}

TEST(IntraComponentTest, ManyComponentsWithIntraStillMatchSerial) {
  // Mixed shape: one giant component (hub) plus many small per-key
  // components — the giant runs through the intra path, the tail through
  // the classic component-per-worker path, and the merged output must stay
  // identical to fully sequential.
  auto tables = GiantComponentTables(3, 12, 2);
  Table extra("x", Schema::FromNames({"solo"}));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(extra.AppendRow({S("s" + std::to_string(i % 20))}).ok());
  }
  tables.push_back(std::move(extra));
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());

  FuzzyFdReport serial_report;
  auto serial = RegularFdBaseline(tables, *aligned, FdOptions(),
                                  /*parallel=*/false, 0, &serial_report);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 8u}) {
    FdOptions fd;
    fd.intra_component_min_size = 4;
    auto parallel = RegularFdBaseline(tables, *aligned, fd,
                                      /*parallel=*/true, threads, nullptr);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->tuples.size(), serial->tuples.size());
    for (size_t i = 0; i < serial->tuples.size(); ++i) {
      ASSERT_EQ(parallel->tuples[i].values, serial->tuples[i].values) << i;
      ASSERT_EQ(parallel->tuples[i].tids, serial->tuples[i].tids) << i;
    }
  }
}

TEST(IntraComponentTest, DisableSplittingViaThreadsKnob) {
  auto tables = GiantComponentTables(3, 10, 2);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());
  ParallelFdOptions opts;
  opts.num_threads = 4;
  opts.fd.intra_component_min_size = 2;
  opts.fd.intra_component_threads = 1;  // knob: force pre-PR4 behavior
  FdStats stats;
  FdProblem p = *problem;
  auto result = ParallelFullDisjunction(opts).RunCodes(&p, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.intra_tasks, 0u);
}

TEST(IntraComponentTest, CancelAtEnumerationEntryReturnsCancelled) {
  auto tables = GiantComponentTables(4, 24, 2);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());
  CancelToken cancel = CancelToken::Create();
  ProgressFn progress = [&cancel](const ProgressEvent& event) {
    if (event.stage == Stage::kFdEnumerate && event.done == 0) {
      cancel.Cancel();
    }
  };
  ParallelFdOptions opts;
  opts.num_threads = 4;
  opts.fd.intra_component_min_size = 2;
  FdStats stats;
  auto result =
      ParallelFullDisjunction(opts).RunCodes(&*problem, &stats, cancel,
                                             progress);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kCancelled);
}

TEST(IntraComponentTest, AsyncCancelMidSubtreeIsCleanUnderAsan) {
  // Fire the token from another thread while subtree tasks are running.
  // Which checkpoint catches it is timing-dependent, so the contract is:
  // either a clean kCancelled or a complete, correct result — never a
  // crash, leak, or partial state (ASan job verifies the "clean" part).
  auto tables = GiantComponentTables(4, 40, 3);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());
  CancelToken cancel = CancelToken::Create();
  std::thread firing([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cancel.Cancel();
  });
  ParallelFdOptions opts;
  opts.num_threads = 4;
  opts.fd.intra_component_min_size = 2;
  FdStats stats;
  auto result =
      ParallelFullDisjunction(opts).RunCodes(&*problem, &stats, cancel);
  firing.join();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), ErrorCode::kCancelled);
  }
}

TEST(IntraComponentTest, BudgetExhaustionPropagatesFromSubtrees) {
  auto tables = GiantComponentTables(4, 24, 2);
  auto problem = BuildGiant(tables);
  ASSERT_TRUE(problem.ok());
  ParallelFdOptions opts;
  opts.num_threads = 4;
  opts.fd.intra_component_min_size = 2;
  opts.fd.max_search_nodes = 1;  // first amortized draw already overdraws
  FdStats stats;
  auto result = ParallelFullDisjunction(opts).RunCodes(&*problem, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

// ------------------------------------------------- zero-copy interning

/// Random tables over a value pool that deliberately contains typed twins
/// (Int(1) vs Double(1.0) vs String("1")): interning must keep them
/// distinct exactly like Value equality does.
std::vector<Table> RandomTypedTables(Rng* rng, size_t num_tables) {
  std::vector<Value> pool = {
      Value::Int(1),          Value::Double(1.0), S("1"),
      Value::Bool(true),      Value::Int(7),      S("seven"),
      Value::Double(2.5),     S("x"),             S("y"),
      Value::Bool(false),
  };
  std::vector<Table> tables;
  for (size_t l = 0; l < num_tables; ++l) {
    // Overlapping headers: c0/c1 shared by all tables, one private column.
    Table t("t" + std::to_string(l),
            Schema::FromNames({"c0", "c1", "m" + std::to_string(l)}));
    const size_t rows = 3 + rng->Uniform(5);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row(3);
      for (size_t c = 0; c < 3; ++c) {
        if (rng->Bernoulli(0.25)) continue;  // null
        row[c] = pool[rng->Uniform(pool.size())];
      }
      EXPECT_TRUE(t.AppendRow(std::move(row)).ok());
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

TEST(BuildInternedTest, ParityWithLegacyBuildOnRandomTypedTables) {
  Rng rng(20260730);
  for (int trial = 0; trial < 25; ++trial) {
    auto tables = RandomTypedTables(&rng, 2 + rng.Uniform(3));
    auto aligned = AlignByName(tables);
    ASSERT_TRUE(aligned.ok());

    auto legacy = FdProblem::Build(tables, *aligned);
    ASSERT_TRUE(legacy.ok());
    SessionDict dict;
    auto interned =
        FdProblem::BuildInterned(BorrowTables(tables), *aligned, &dict);
    ASSERT_TRUE(interned.ok());

    ASSERT_EQ(legacy->num_tuples(), interned->num_tuples());
    for (uint32_t tid = 0; tid < legacy->num_tuples(); ++tid) {
      ASSERT_EQ(legacy->table_id(tid), interned->table_id(tid));
    }

    auto legacy_result = FullDisjunction().Run(&*legacy);
    auto interned_result = FullDisjunction().Run(&*interned);
    ASSERT_TRUE(legacy_result.ok()) << trial;
    ASSERT_TRUE(interned_result.ok()) << trial;
    ASSERT_EQ(legacy_result->tuples.size(), interned_result->tuples.size())
        << trial;
    for (size_t i = 0; i < legacy_result->tuples.size(); ++i) {
      ASSERT_EQ(legacy_result->tuples[i].values,
                interned_result->tuples[i].values)
          << "trial " << trial << " tuple " << i;
      ASSERT_EQ(legacy_result->tuples[i].tids,
                interned_result->tuples[i].tids)
          << "trial " << trial << " tuple " << i;
    }

    // The acceptance claim: the legacy path copies every padded cell; the
    // interned path copies only the values new to the session dictionary.
    size_t cells = 0;
    for (const auto& t : tables) cells += t.NumRows() * t.NumColumns();
    EXPECT_GE(legacy_result->stats.value_copies, cells) << trial;
    EXPECT_LE(interned_result->stats.value_copies, dict.NumDistinct())
        << trial;
    // distinct_values describes THIS problem on both paths, even though
    // the session dictionary spans the whole session.
    EXPECT_EQ(legacy_result->stats.distinct_values,
              interned_result->stats.distinct_values)
        << trial;
  }
}

TEST(BuildInternedTest, PinnedTablesWarmToZeroCopiesAndCacheHits) {
  auto tables = GiantComponentTables(3, 8, 2);
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  SessionDict dict;
  TableList borrowed;
  std::vector<std::shared_ptr<const Table>> pinned;
  for (auto& t : tables) {
    pinned.push_back(std::make_shared<const Table>(std::move(t)));
    dict.PinTable(pinned.back());
    borrowed.push_back(pinned.back().get());
  }

  auto cold = FdProblem::BuildInterned(borrowed, *aligned, &dict);
  ASSERT_TRUE(cold.ok());
  cold->BuildIndex();
  EXPECT_GT(cold->index_stats().value_copies, 0u);
  const auto cold_stats = dict.stats();
  EXPECT_EQ(cold_stats.column_hits, 0u);

  auto warm = FdProblem::BuildInterned(borrowed, *aligned, &dict);
  ASSERT_TRUE(warm.ok());
  warm->BuildIndex();
  // Warm rebuild: every column answered from the memo, zero Value copies.
  EXPECT_EQ(warm->index_stats().value_copies, 0u);
  const auto warm_stats = dict.stats();
  EXPECT_EQ(warm_stats.column_hits - cold_stats.column_hits,
            borrowed.size() * 3);

  // Identical code rows both times (codes are session-stable).
  ASSERT_EQ(cold->num_tuples(), warm->num_tuples());
  for (uint32_t tid = 0; tid < cold->num_tuples(); ++tid) {
    for (size_t c = 0; c < cold->num_columns(); ++c) {
      ASSERT_EQ(cold->CodeRow(tid)[c], warm->CodeRow(tid)[c]);
    }
  }

  // Dropping a table unpins it: the next build re-interns (still zero NEW
  // values, but no memo hit for that table's columns).
  dict.DropTable(pinned[0].get());
  auto after_drop = FdProblem::BuildInterned(borrowed, *aligned, &dict);
  ASSERT_TRUE(after_drop.ok());
  const auto drop_stats = dict.stats();
  EXPECT_EQ(drop_stats.column_hits - warm_stats.column_hits,
            (borrowed.size() - 1) * 3);
}

TEST(BuildInternedTest, DecodeStaysValidWhileAnotherThreadInterns) {
  // The session-dict contract: one request may stream-decode its codes
  // while another request is still interning new values. ASan flags any
  // use-after-free if dictionary growth ever moved decoded storage.
  SessionDict dict;
  std::vector<uint32_t> codes;
  std::vector<std::string> originals;
  for (int i = 0; i < 2000; ++i) {
    originals.push_back("warm_" + std::to_string(i));
    codes.push_back(dict.InternValue(S(originals.back())));
  }
  std::atomic<bool> stop{false};
  std::thread interner([&] {
    for (int i = 0; i < 60000 && !stop.load(); ++i) {
      dict.InternValue(S("grow_" + std::to_string(i)));
    }
  });
  size_t mismatches = 0;
  for (int round = 0; round < 50; ++round) {
    for (size_t i = 0; i < codes.size(); ++i) {
      const Value& v = dict.dict().Decode(codes[i]);
      if (!(v == S(originals[i]))) ++mismatches;
    }
  }
  stop.store(true);
  interner.join();
  EXPECT_EQ(mismatches, 0u);
}

TEST(BuildInternedTest, AddTupleRejectedOnInternedProblem) {
  auto tables = GiantComponentTables(2, 2, 1);
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  SessionDict dict;
  auto problem =
      FdProblem::BuildInterned(BorrowTables(tables), *aligned, &dict);
  ASSERT_TRUE(problem.ok());
  auto status = problem->AddTuple(
      0, std::vector<Value>(problem->num_columns()));
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(ValueDictTest, CopyAndMoveKeepBucketedStorageIntact) {
  ValueDict dict;
  std::vector<uint32_t> codes;
  for (int i = 0; i < 3000; ++i) {
    codes.push_back(dict.Intern(Value::Int(i)));
  }
  ValueDict copy = dict;
  EXPECT_EQ(copy.NumDistinct(), dict.NumDistinct());
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(copy.Decode(codes[i]), Value::Int(i));
    EXPECT_EQ(copy.Intern(Value::Int(i)), codes[i]);
  }
  ValueDict moved = std::move(copy);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(moved.Decode(codes[i]), Value::Int(i));
  }
}

}  // namespace
}  // namespace lakefuzz
