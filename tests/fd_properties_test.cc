// Property tests of the Full Disjunction guarantees the paper builds on:
//
//   (1) information preservation — every input tuple's TID appears in at
//       least one result tuple ("each tuple is represented and no tuples
//       remain incomplete", paper Sec 1);
//   (2) the output is subsumption-free;
//   (3) every result's provenance is a connected, join-consistent set with
//       at most one tuple per table, and its values are exactly their join.
//
// Checked on randomized instances across a grid of shapes, for both the
// sequential and the parallel executor, and through the fuzzy pipeline.
#include <gtest/gtest.h>

#include "core/fuzzy_fd.h"
#include "embedding/model_zoo.h"
#include "fd/full_disjunction.h"
#include "fd/parallel.h"
#include "util/rng.h"

namespace lakefuzz {
namespace {

struct Shape {
  size_t num_tables;
  size_t rows_per_table;
  size_t num_columns;
  size_t value_domain;
  uint64_t seed;
};

FdProblem RandomProblem(const Shape& shape, Rng* rng) {
  std::vector<std::string> names;
  for (size_t c = 0; c < shape.num_columns; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  FdProblem problem(shape.num_columns, names);
  for (size_t l = 0; l < shape.num_tables; ++l) {
    for (size_t r = 0; r < shape.rows_per_table; ++r) {
      std::vector<Value> vals(shape.num_columns);
      bool any = false;
      for (size_t c = 0; c < shape.num_columns; ++c) {
        if (rng->Bernoulli(0.3)) continue;
        vals[c] = Value::String(std::string(
            1, static_cast<char>('a' + rng->Uniform(shape.value_domain))));
        any = true;
      }
      if (!any) vals[0] = Value::String("x");  // avoid all-null tuples
      EXPECT_TRUE(
          problem.AddTuple(static_cast<uint32_t>(l), std::move(vals)).ok());
    }
  }
  return problem;
}

void CheckInvariants(const FdProblem& problem, const FdResult& result) {
  // (1) Information preservation.
  std::vector<char> covered(problem.num_tuples(), 0);
  for (const auto& t : result.tuples) {
    for (uint32_t tid : t.tids) {
      ASSERT_LT(tid, problem.num_tuples());
      covered[tid] = 1;
    }
  }
  for (size_t tid = 0; tid < problem.num_tuples(); ++tid) {
    // A tuple may be represented through a duplicate with identical values;
    // verify its values are carried by some result instead of its TID.
    if (covered[tid]) continue;
    FdResultTuple as_result;
    as_result.values = problem.tuples()[tid].values;
    bool carried = false;
    for (const auto& t : result.tuples) {
      if (Subsumes(t, as_result)) {
        carried = true;
        break;
      }
    }
    EXPECT_TRUE(carried) << "input tuple " << tid << " lost";
  }

  // (2) Subsumption-free output.
  for (size_t i = 0; i < result.tuples.size(); ++i) {
    for (size_t j = 0; j < result.tuples.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Subsumes(result.tuples[i], result.tuples[j]) &&
                   Subsumes(result.tuples[j], result.tuples[i]))
          << "duplicate results " << i << " and " << j;
      if (NonNullCount(result.tuples[i]) > NonNullCount(result.tuples[j])) {
        EXPECT_FALSE(Subsumes(result.tuples[i], result.tuples[j]))
            << "result " << j << " subsumed by " << i;
      }
    }
  }

  // (3) Provenance validity: one tuple per table, join-consistent, values
  // are exactly the join, and the set is connected.
  for (const auto& t : result.tuples) {
    std::set<uint32_t> tables;
    std::vector<Value> merged(problem.num_columns());
    for (uint32_t tid : t.tids) {
      const auto& input = problem.tuples()[tid];
      EXPECT_TRUE(tables.insert(input.table_id).second)
          << "two tuples from table " << input.table_id;
      for (size_t c = 0; c < problem.num_columns(); ++c) {
        if (input.values[c].is_null()) continue;
        if (merged[c].is_null()) {
          merged[c] = input.values[c];
        } else {
          EXPECT_EQ(merged[c], input.values[c]) << "join-inconsistent set";
        }
      }
    }
    EXPECT_EQ(merged, t.values) << "values are not the join of the TIDs";

    // Connectivity via shared equal non-null values.
    if (t.tids.size() > 1) {
      std::vector<char> reached(t.tids.size(), 0);
      reached[0] = 1;
      size_t count = 1;
      bool grew = true;
      while (grew) {
        grew = false;
        for (size_t i = 0; i < t.tids.size(); ++i) {
          if (reached[i]) continue;
          for (size_t j = 0; j < t.tids.size(); ++j) {
            if (!reached[j]) continue;
            const auto& a = problem.tuples()[t.tids[i]].values;
            const auto& b = problem.tuples()[t.tids[j]].values;
            bool share = false;
            for (size_t c = 0; c < problem.num_columns(); ++c) {
              if (!a[c].is_null() && !b[c].is_null() && a[c] == b[c]) {
                share = true;
                break;
              }
            }
            if (share) {
              reached[i] = 1;
              ++count;
              grew = true;
              break;
            }
          }
        }
      }
      EXPECT_EQ(count, t.tids.size()) << "provenance set not connected";
    }
  }
}

class FdInvariantProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(FdInvariantProperty, SequentialExecutorUpholdsInvariants) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 10; ++trial) {
    FdProblem problem = RandomProblem(GetParam(), &rng);
    auto result = FullDisjunction().Run(&problem);
    ASSERT_TRUE(result.ok());
    CheckInvariants(problem, *result);
  }
}

TEST_P(FdInvariantProperty, ParallelExecutorUpholdsInvariants) {
  Rng rng(GetParam().seed ^ 0x9999);
  for (int trial = 0; trial < 5; ++trial) {
    FdProblem problem = RandomProblem(GetParam(), &rng);
    auto result = ParallelFullDisjunction().Run(&problem);
    ASSERT_TRUE(result.ok());
    CheckInvariants(problem, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FdInvariantProperty,
    ::testing::Values(Shape{2, 4, 3, 2, 1}, Shape{3, 5, 3, 3, 2},
                      Shape{4, 6, 4, 3, 3}, Shape{3, 8, 5, 4, 4},
                      Shape{5, 4, 4, 2, 5}, Shape{2, 10, 3, 5, 6}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      const auto& p = info.param;
      return "t" + std::to_string(p.num_tables) + "r" +
             std::to_string(p.rows_per_table) + "c" +
             std::to_string(p.num_columns) + "d" +
             std::to_string(p.value_domain);
    });

TEST(FuzzyFdInvariantTest, PipelineOutputUpholdsFdInvariants) {
  // The fuzzy pipeline's output is an FD over the *rewritten* tables; its
  // invariants must hold with respect to those tables.
  auto t1 = Table::FromRows("T1", {"k", "a"},
                            {{Value::String("Berlinn"), Value::String("x")},
                             {Value::String("Toronto"), Value::String("y")}});
  auto t2 = Table::FromRows("T2", {"k", "b"},
                            {{Value::String("Berlin"), Value::String("p")},
                             {Value::String("Madrid"), Value::String("q")}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::vector<Table> tables{*t1, *t2};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());

  FuzzyFdOptions opts;
  opts.matcher.model = MakeModel(ModelKind::kMistral);
  FuzzyFullDisjunction fuzzy(opts);
  auto rewritten = fuzzy.RewriteTables(tables, *aligned, nullptr);
  ASSERT_TRUE(rewritten.ok());
  auto result = fuzzy.RunToTuples(tables, *aligned);
  ASSERT_TRUE(result.ok());

  auto problem = FdProblem::Build(*rewritten, *aligned);
  ASSERT_TRUE(problem.ok());
  problem->BuildIndex();
  CheckInvariants(*problem, *result);
}

}  // namespace
}  // namespace lakefuzz
