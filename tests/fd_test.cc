// Tests for src/fd: aligned schemas, the FD problem, subsumption, the
// production Full Disjunction (validated against the brute-force oracle and
// against the paper's Fig. 1), and the parallel executor.
#include <gtest/gtest.h>

#include <set>

#include "fd/aligned_schema.h"
#include "fd/full_disjunction.h"
#include "fd/oracle.h"
#include "fd/parallel.h"
#include "fd/problem.h"
#include "fd/subsumption.h"
#include "util/rng.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

// The paper's Fig. 1 tables (equi-join case).
std::vector<Table> Fig1Tables() {
  auto t1 = Table::FromRows(
      "T1", {"City", "Country"},
      {{S("Berlinn"), S("Germany")},
       {S("Toronto"), S("Canada")},
       {S("Barcelona"), S("Spain")},
       {S("New Delhi"), S("India")}});
  auto t2 = Table::FromRows(
      "T2", {"Country", "City", "VacRate"},
      {{S("CA"), S("Toronto"), S("83%")},
       {S("US"), S("Boston"), S("62%")},
       {S("DE"), S("Berlin"), S("63%")},
       {S("ES"), S("Barcelona"), S("82%")}});
  auto t3 = Table::FromRows(
      "T3", {"City", "TotalCases", "DeathRate"},
      {{S("Berlin"), S("1.4M"), S("147")},
       {S("barcelona"), S("2.68M"), S("275")},
       {S("Boston"), S("263K"), S("335")}});
  EXPECT_TRUE(t1.ok() && t2.ok() && t3.ok());
  return {std::move(t1).value(), std::move(t2).value(), std::move(t3).value()};
}

// ---------------------------------------------------------------- AlignedSchema

TEST(AlignedSchemaTest, AlignByNameMergesEqualHeaders) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  // Universal columns: City, Country, VacRate, TotalCases, DeathRate.
  EXPECT_EQ(aligned->NumUniversal(), 5u);
  EXPECT_EQ(aligned->universal_names[0], "City");
  // T2's City (its column 1) maps to the same universal column as T1's.
  EXPECT_EQ(aligned->column_map[1][1], aligned->column_map[0][0]);
}

TEST(AlignedSchemaTest, AlignByNameRejectsDuplicateHeaders) {
  Table bad("bad", Schema::FromNames({"x", "x"}));
  auto aligned = AlignByName({bad});
  EXPECT_FALSE(aligned.ok());
}

TEST(AlignedSchemaTest, SourcesOfListsTableOrder) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto sources = aligned->SourcesOf(0);  // City
  ASSERT_EQ(sources.size(), 3u);
  EXPECT_EQ(sources[0], (std::pair<size_t, size_t>{0, 0}));
  EXPECT_EQ(sources[1], (std::pair<size_t, size_t>{1, 1}));
  EXPECT_EQ(sources[2], (std::pair<size_t, size_t>{2, 0}));
}

TEST(AlignedSchemaTest, ValidateCatchesBadMappings) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  AlignedSchema broken = *aligned;
  broken.column_map[0][1] = broken.column_map[0][0];  // two cols → same u
  EXPECT_FALSE(ValidateAlignedSchema(broken, tables).ok());
  AlignedSchema out_of_range = *aligned;
  out_of_range.column_map[0][0] = 99;
  EXPECT_FALSE(ValidateAlignedSchema(out_of_range, tables).ok());
  AlignedSchema wrong_width = *aligned;
  wrong_width.column_map[0].pop_back();
  EXPECT_FALSE(ValidateAlignedSchema(wrong_width, tables).ok());
}

// ---------------------------------------------------------------- FdProblem

TEST(FdProblemTest, BuildPadsWithNulls) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ(problem->num_tuples(), 11u);
  EXPECT_EQ(problem->num_columns(), 5u);
  // First T1 tuple: City/Country set, rest null.
  const auto& t0 = problem->tuples()[0];
  EXPECT_EQ(t0.table_id, 0u);
  EXPECT_EQ(t0.values[0], S("Berlinn"));
  EXPECT_TRUE(t0.values[2].is_null());
}

TEST(FdProblemTest, NeighborsViaSharedValues) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  problem->BuildIndex();
  // TID 1 = (Toronto, Canada); TID 4 = T2 (CA, Toronto, 83%): share City.
  const auto& n1 = problem->Neighbors(1);
  EXPECT_NE(std::find(n1.begin(), n1.end(), 4u), n1.end());
  // Berlinn (TID 0) has no equal value anywhere.
  EXPECT_TRUE(problem->Neighbors(0).empty());
}

TEST(FdProblemTest, ComponentsPartitionTuples) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  problem->BuildIndex();
  size_t total = 0;
  std::set<uint32_t> seen;
  for (const auto& comp : problem->Components()) {
    total += comp.size();
    for (uint32_t t : comp) EXPECT_TRUE(seen.insert(t).second);
  }
  EXPECT_EQ(total, problem->num_tuples());
}

TEST(FdProblemTest, AddTupleChecksArity) {
  FdProblem p(3, {"a", "b", "c"});
  EXPECT_FALSE(p.AddTuple(0, {S("x")}).ok());
  EXPECT_TRUE(p.AddTuple(0, {S("x"), Value::Null(), Value::Null()}).ok());
}

// ---------------------------------------------------------------- Subsumption

FdResultTuple MakeTuple(std::vector<Value> values, std::vector<uint32_t> tids) {
  FdResultTuple t;
  t.values = std::move(values);
  t.tids = std::move(tids);
  return t;
}

TEST(SubsumptionTest, SubsumesSemantics) {
  auto big = MakeTuple({S("a"), S("b"), S("c")}, {0, 1});
  auto small = MakeTuple({S("a"), Value::Null(), S("c")}, {0});
  auto conflicting = MakeTuple({S("a"), S("X"), Value::Null()}, {2});
  EXPECT_TRUE(Subsumes(big, small));
  EXPECT_FALSE(Subsumes(small, big));
  EXPECT_TRUE(Subsumes(big, big));
  EXPECT_FALSE(Subsumes(big, conflicting));
}

TEST(SubsumptionTest, EliminatesStrictlySubsumed) {
  auto result = EliminateSubsumed(
      {MakeTuple({S("a"), Value::Null()}, {0}),
       MakeTuple({S("a"), S("b")}, {0, 1})});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].values[1], S("b"));
}

TEST(SubsumptionTest, KeepsIncomparableTuples) {
  auto result = EliminateSubsumed(
      {MakeTuple({S("a"), Value::Null()}, {0}),
       MakeTuple({Value::Null(), S("b")}, {1})});
  EXPECT_EQ(result.size(), 2u);
}

TEST(SubsumptionTest, CollapsesDuplicatesKeepingSmallestProvenance) {
  auto result = EliminateSubsumed(
      {MakeTuple({S("a")}, {5}), MakeTuple({S("a")}, {2})});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].tids, (std::vector<uint32_t>{2}));
}

TEST(SubsumptionTest, EqualValuesDifferentColumnsNotConfused) {
  // Same value "x" in different columns must not alias.
  auto a = MakeTuple({S("x"), Value::Null()}, {0});
  auto b = MakeTuple({Value::Null(), S("x")}, {1});
  EXPECT_EQ(EliminateSubsumed({a, b}).size(), 2u);
}

TEST(SubsumptionTest, OutputSortedDeterministically) {
  auto result = EliminateSubsumed(
      {MakeTuple({S("z")}, {3}), MakeTuple({S("y")}, {1}),
       MakeTuple({S("x")}, {2})});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_TRUE(FdTupleLess(result[0], result[1]));
  EXPECT_TRUE(FdTupleLess(result[1], result[2]));
}

TEST(SubsumptionTest, AllNullTuples) {
  // An all-null tuple is (vacuously) subsumed by any other tuple — but a
  // result set of only all-null duplicates must keep one, not vanish.
  auto null2 = [](std::vector<uint32_t> tids) {
    return MakeTuple({Value::Null(), Value::Null()}, std::move(tids));
  };
  auto only_nulls = EliminateSubsumed({null2({0}), null2({1})});
  ASSERT_EQ(only_nulls.size(), 1u);
  EXPECT_EQ(NonNullCount(only_nulls[0]), 0u);
  auto mixed = EliminateSubsumed({null2({0}), MakeTuple({S("a"), Value::Null()}, {1})});
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(NonNullCount(mixed[0]), 1u);
}

TEST(SubsumptionTest, NonNullCount) {
  EXPECT_EQ(NonNullCount(MakeTuple({S("a"), Value::Null(), S("c")}, {})), 2u);
  EXPECT_EQ(NonNullCount(MakeTuple({}, {})), 0u);
}

TEST(SubsumptionTest, ChainOfSubsumption) {
  auto result = EliminateSubsumed(
      {MakeTuple({S("a"), Value::Null(), Value::Null()}, {0}),
       MakeTuple({S("a"), S("b"), Value::Null()}, {0, 1}),
       MakeTuple({S("a"), S("b"), S("c")}, {0, 1, 2})});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(NonNullCount(result[0]), 3u);
}

// ---------------------------------------------------------------- FD on Fig. 1

TEST(FullDisjunctionTest, Fig1EquiJoinProducesNineTuples) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  FullDisjunction fd;
  auto result = fd.Run(&problem.value());
  ASSERT_TRUE(result.ok());
  // Paper Fig. 1, FD(T1,T2,T3): f1..f9.
  EXPECT_EQ(result->tuples.size(), 9u);

  // f6 = {t5(Boston row of T2 = TID 5), t10? } — Boston rows: T2 row 1 is
  // TID 5, T3 row 2 is TID 10; they must be merged.
  bool found_boston = false;
  for (const auto& t : result->tuples) {
    if (t.tids == std::vector<uint32_t>{5, 10}) {
      found_boston = true;
      EXPECT_EQ(t.values[0], S("Boston"));
      EXPECT_EQ(t.values[1], S("US"));
      EXPECT_EQ(t.values[2], S("62%"));
      EXPECT_EQ(t.values[3], S("263K"));
    }
  }
  EXPECT_TRUE(found_boston);

  // Berlin rows of T2 (TID 6) and T3 (TID 8) merge; Berlinn (TID 0) stays
  // alone; Barcelona/ES (TID 7) and Barcelona/Spain (TID 2) stay apart.
  std::set<std::vector<uint32_t>> tid_sets;
  for (const auto& t : result->tuples) tid_sets.insert(t.tids);
  EXPECT_TRUE(tid_sets.count({6, 8}));
  EXPECT_TRUE(tid_sets.count({0}));
  EXPECT_TRUE(tid_sets.count({2}));
  EXPECT_TRUE(tid_sets.count({7}));
  EXPECT_TRUE(tid_sets.count({9}));  // barcelona (lowercase, T3)
}

TEST(FullDisjunctionTest, TwoTableCaseEqualsFullOuterJoin) {
  auto left = Table::FromRows("L", {"k", "a"},
                              {{S("1"), S("x")}, {S("2"), S("y")}});
  auto right = Table::FromRows("R", {"k", "b"},
                               {{S("1"), S("p")}, {S("3"), S("q")}});
  ASSERT_TRUE(left.ok() && right.ok());
  std::vector<Table> tables{*left, *right};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  auto result = FullDisjunction().Run(&problem.value());
  ASSERT_TRUE(result.ok());
  // FULL OUTER JOIN: merged(1), left-only(2), right-only(3).
  ASSERT_EQ(result->tuples.size(), 3u);
}

TEST(FullDisjunctionTest, CrossProductWhenMultipleJoinPartners) {
  // One left tuple joins two right tuples that conflict with each other:
  // FD keeps both combinations (like a join).
  auto left = Table::FromRows("L", {"k", "a"}, {{S("1"), S("x")}});
  auto right = Table::FromRows("R", {"k", "b"},
                               {{S("1"), S("p")}, {S("1"), S("q")}});
  ASSERT_TRUE(left.ok() && right.ok());
  std::vector<Table> tables{*left, *right};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  auto result = FullDisjunction().Run(&problem.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);
  for (const auto& t : result->tuples) {
    EXPECT_EQ(NonNullCount(t), 3u);  // k, a, b all filled
  }
}

TEST(FullDisjunctionTest, EmptyInputYieldsEmptyResult) {
  FdProblem problem(2, {"a", "b"});
  auto result = FullDisjunction().Run(&problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());
  EXPECT_EQ(result->stats.num_components, 0u);
}

TEST(FullDisjunctionTest, SingleTableIsIdentityModuloSubsumption) {
  auto t = Table::FromRows("T", {"a", "b"},
                           {{S("1"), S("x")}, {S("2"), Value::Null()}});
  ASSERT_TRUE(t.ok());
  std::vector<Table> tables{*t};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  auto result = FullDisjunction().Run(&problem.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);
}

TEST(FullDisjunctionTest, DuplicateTuplesCollapse) {
  auto t = Table::FromRows("T", {"a"}, {{S("dup")}, {S("dup")}});
  ASSERT_TRUE(t.ok());
  std::vector<Table> tables{*t};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  auto result = FullDisjunction().Run(&problem.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(FullDisjunctionTest, BudgetExhaustionSurfacesError) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  FdOptions opts;
  opts.max_search_nodes = 1;  // absurdly small
  auto result = FullDisjunction(opts).Run(&problem.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FullDisjunctionTest, ResultsToTableWithProvenance) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto table = FullDisjunction().RunToTable(tables, *aligned,
                                            /*include_provenance=*/true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).name, "TIDs");
  EXPECT_EQ(table->NumRows(), 9u);
  bool saw_pair = false;
  for (size_t r = 0; r < table->NumRows(); ++r) {
    if (table->At(r, 0) == S("{t6,t8}")) saw_pair = true;
  }
  EXPECT_TRUE(saw_pair);
}

// ---------------------------------------------------- property: vs oracle

struct OracleCase {
  size_t num_tables;
  size_t rows_per_table;
  size_t num_columns;
  size_t value_domain;  ///< small domain → dense join graph, conflicts
  uint64_t seed;
};

class FdOracleProperty : public ::testing::TestWithParam<OracleCase> {};

FdProblem RandomProblem(const OracleCase& oc, Rng* rng) {
  std::vector<std::string> names;
  for (size_t c = 0; c < oc.num_columns; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  FdProblem problem(oc.num_columns, names);
  for (size_t l = 0; l < oc.num_tables; ++l) {
    for (size_t r = 0; r < oc.rows_per_table; ++r) {
      std::vector<Value> vals(oc.num_columns);
      for (size_t c = 0; c < oc.num_columns; ++c) {
        if (rng->Bernoulli(0.35)) continue;  // null
        vals[c] = Value::String(
            std::string(1, static_cast<char>('a' + rng->Uniform(oc.value_domain))));
      }
      EXPECT_TRUE(
          problem.AddTuple(static_cast<uint32_t>(l), std::move(vals)).ok());
    }
  }
  return problem;
}

TEST_P(FdOracleProperty, ProductionMatchesOracle) {
  const OracleCase& oc = GetParam();
  Rng rng(oc.seed);
  for (int trial = 0; trial < 15; ++trial) {
    FdProblem problem = RandomProblem(oc, &rng);
    FdProblem problem_copy = problem;
    auto fast = FullDisjunction().Run(&problem);
    auto oracle = NaiveFdOracle(problem_copy);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(fast->tuples.size(), oracle->size()) << "trial " << trial;
    for (size_t i = 0; i < fast->tuples.size(); ++i) {
      EXPECT_EQ(fast->tuples[i].values, (*oracle)[i].values)
          << "trial " << trial << " tuple " << i;
      EXPECT_EQ(fast->tuples[i].tids, (*oracle)[i].tids);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, FdOracleProperty,
    ::testing::Values(OracleCase{2, 3, 2, 2, 11}, OracleCase{2, 4, 3, 2, 22},
                      OracleCase{3, 3, 3, 2, 33}, OracleCase{3, 3, 4, 3, 44},
                      OracleCase{4, 3, 3, 3, 55}, OracleCase{2, 6, 3, 2, 66},
                      OracleCase{3, 4, 2, 2, 77}, OracleCase{4, 2, 5, 3, 88}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      const auto& p = info.param;
      return "t" + std::to_string(p.num_tables) + "r" +
             std::to_string(p.rows_per_table) + "c" +
             std::to_string(p.num_columns) + "d" +
             std::to_string(p.value_domain);
    });

// ------------------------------------------- property: order invariance

TEST(FullDisjunctionTest, TableOrderInvariantUpToProvenance) {
  // FD is associative/commutative: permuting the input tables must yield
  // the same set of value tuples (TIDs renumber, values must not change).
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  auto base = FullDisjunction().Run(&problem.value());
  ASSERT_TRUE(base.ok());

  std::vector<size_t> perm{2, 0, 1};
  std::vector<Table> shuffled;
  for (size_t i : perm) shuffled.push_back(tables[i]);
  auto aligned2 = AlignByName(shuffled);
  ASSERT_TRUE(aligned2.ok());
  auto problem2 = FdProblem::Build(shuffled, *aligned2);
  ASSERT_TRUE(problem2.ok());
  auto permuted = FullDisjunction().Run(&problem2.value());
  ASSERT_TRUE(permuted.ok());

  ASSERT_EQ(base->tuples.size(), permuted->tuples.size());
  // Compare as multisets of value maps keyed by universal NAME (column
  // order may differ between the two alignments).
  auto canonicalize = [](const FdResult& r,
                         const std::vector<std::string>& names) {
    std::multiset<std::set<std::pair<std::string, std::string>>> out;
    for (const auto& t : r.tuples) {
      std::set<std::pair<std::string, std::string>> entry;
      for (size_t c = 0; c < t.values.size(); ++c) {
        if (!t.values[c].is_null()) {
          entry.emplace(names[c], t.values[c].ToString());
        }
      }
      out.insert(std::move(entry));
    }
    return out;
  };
  EXPECT_EQ(canonicalize(*base, aligned->universal_names),
            canonicalize(*permuted, aligned2->universal_names));
}

TEST(FullDisjunctionTest, RandomizedOrderInvariance) {
  Rng rng(505);
  for (int trial = 0; trial < 10; ++trial) {
    OracleCase oc{3, 3, 3, 2, 0};
    FdProblem p = RandomProblem(oc, &rng);
    // Recreate the same tuples under a permuted table labeling by swapping
    // table ids — values stay put, so FD output values must be identical.
    FdProblem q(p.num_columns(), p.column_names());
    for (const auto& t : p.tuples()) {
      EXPECT_TRUE(q.AddTuple((t.table_id + 1) % 3, t.values).ok());
    }
    auto rp = FullDisjunction().Run(&p);
    auto rq = FullDisjunction().Run(&q);
    ASSERT_TRUE(rp.ok());
    ASSERT_TRUE(rq.ok());
    ASSERT_EQ(rp->tuples.size(), rq->tuples.size());
    for (size_t i = 0; i < rp->tuples.size(); ++i) {
      EXPECT_EQ(rp->tuples[i].values, rq->tuples[i].values);
    }
  }
}

// ---------------------------------------------------------------- Parallel

TEST(ParallelFdTest, MatchesSequentialOnFig1) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto p1 = FdProblem::Build(tables, *aligned);
  auto p2 = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto seq = FullDisjunction().Run(&p1.value());
  ParallelFdOptions popts;
  popts.num_threads = 4;
  auto par = ParallelFullDisjunction(popts).Run(&p2.value());
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(seq->tuples.size(), par->tuples.size());
  for (size_t i = 0; i < seq->tuples.size(); ++i) {
    EXPECT_EQ(seq->tuples[i].values, par->tuples[i].values);
    EXPECT_EQ(seq->tuples[i].tids, par->tuples[i].tids);
  }
}

TEST(ParallelFdTest, MatchesSequentialOnRandomInstances) {
  Rng rng(606);
  for (int trial = 0; trial < 8; ++trial) {
    OracleCase oc{3, 5, 3, 3, 0};
    FdProblem p = RandomProblem(oc, &rng);
    FdProblem q = p;
    auto seq = FullDisjunction().Run(&p);
    auto par = ParallelFullDisjunction().Run(&q);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(par.ok());
    ASSERT_EQ(seq->tuples.size(), par->tuples.size()) << trial;
    for (size_t i = 0; i < seq->tuples.size(); ++i) {
      EXPECT_EQ(seq->tuples[i].values, par->tuples[i].values);
    }
  }
}

TEST(ParallelFdTest, PropagatesBudgetError) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  ParallelFdOptions popts;
  popts.fd.max_search_nodes = 1;
  auto result = ParallelFullDisjunction(popts).Run(&problem.value());
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------- Oracle

TEST(OracleTest, RefusesLargeInputs) {
  FdProblem p(1, {"a"});
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(p.AddTuple(0, {S("v")}).ok());
  }
  EXPECT_FALSE(NaiveFdOracle(p, /*max_tuples=*/20).ok());
}

TEST(OracleTest, HandlesFig1) {
  auto tables = Fig1Tables();
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  auto problem = FdProblem::Build(tables, *aligned);
  ASSERT_TRUE(problem.ok());
  auto oracle = NaiveFdOracle(*problem);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->size(), 9u);
}

}  // namespace
}  // namespace lakefuzz
