// End-to-end integration tests: the full paper pipeline over the generated
// benchmarks, tying every module together.
#include <gtest/gtest.h>

#include "core/fuzzy_fd.h"
#include "core/value_matcher.h"
#include "datagen/autojoin.h"
#include "datagen/embench.h"
#include "datagen/imdb.h"
#include "em/entity_matcher.h"
#include "embedding/model_zoo.h"
#include "match/schema_matcher.h"
#include "metrics/pair_eval.h"
#include "table/csv.h"

namespace lakefuzz {
namespace {

/// Runs the paper's value-matching evaluation on one Auto-Join set.
Prf EvaluateSet(const AutoJoinSet& set, const ValueMatcherOptions& opts) {
  ValueMatcher matcher(opts);
  auto result = matcher.MatchColumns(set.columns);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::set<ItemPair> predicted;
  for (const auto& [a, b] : CrossColumnPairs(*result)) {
    predicted.insert(MakePair(ValueItemId(a.first, a.second),
                              ValueItemId(b.first, b.second)));
  }
  return EvaluatePairs(predicted, set.GroundTruthPairs());
}

TEST(IntegrationTest, AutoJoinMistralBeatsFastTextOnF1) {
  AutoJoinOptions gen;
  gen.num_sets = 8;
  gen.entities_per_set = 60;
  auto sets = GenerateAutoJoinBenchmark(gen);

  ValueMatcherOptions mistral;
  mistral.model = MakeModel(ModelKind::kMistral);
  ValueMatcherOptions fasttext;
  fasttext.model = MakeModel(ModelKind::kFastText);

  std::vector<Prf> pm, pf;
  for (const auto& set : sets) {
    pm.push_back(EvaluateSet(set, mistral));
    pf.push_back(EvaluateSet(set, fasttext));
  }
  MacroPrf m = MacroAverage(pm);
  MacroPrf f = MacroAverage(pf);
  EXPECT_GT(m.f1, f.f1) << "Mistral " << m.ToString() << " vs FastText "
                        << f.ToString();
  EXPECT_GT(m.f1, 0.6);  // the simulated Table-1 regime
}

TEST(IntegrationTest, EmDownstreamFuzzyBeatsRegular) {
  EmBenchOptions gen;
  gen.num_entities = 120;
  gen.seed = 7;
  auto bench = GenerateEmBenchmark(gen);
  auto aligned = AlignByName(bench.tables);
  ASSERT_TRUE(aligned.ok());

  FuzzyFdOptions opts;
  opts.matcher.model = MakeModel(ModelKind::kMistral);
  auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(bench.tables, *aligned);
  ASSERT_TRUE(fuzzy.ok());
  auto regular =
      RegularFdBaseline(bench.tables, *aligned, FdOptions(), false, 0,
                        nullptr);
  ASSERT_TRUE(regular.ok());

  EntityMatcherOptions em_opts;
  em_opts.similarity_threshold = 0.82;
  EntityMatcher em(em_opts);
  auto eval = [&](const FdResult& fd) {
    Table integrated = FdResultsToTable(fd.tuples, aligned->universal_names,
                                        "integrated");
    auto clusters = em.Cluster(integrated);
    return EvaluateClustering(ExpandClustersToTids(fd.tuples, clusters),
                              bench.tid_entity);
  };
  Prf fuzzy_prf = eval(*fuzzy);
  Prf regular_prf = eval(*regular);
  EXPECT_GT(fuzzy_prf.f1(), regular_prf.f1())
      << "fuzzy " << fuzzy_prf.ToString() << " vs regular "
      << regular_prf.ToString();
}

TEST(IntegrationTest, ImdbEquiWorkloadFuzzyAddsResultsIdenticalToRegular) {
  ImdbOptions gen;
  gen.target_tuples = 1500;
  auto bench = GenerateImdb(gen);
  auto aligned = AlignByName(bench.tables);
  ASSERT_TRUE(aligned.ok());

  FuzzyFdOptions opts;
  opts.matcher.model = MakeModel(ModelKind::kMistral);
  FuzzyFdReport fuzzy_report;
  auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(bench.tables, *aligned,
                                                      &fuzzy_report);
  ASSERT_TRUE(fuzzy.ok()) << fuzzy.status().ToString();
  auto regular = RegularFdBaseline(bench.tables, *aligned, FdOptions(), false,
                                   0, nullptr);
  ASSERT_TRUE(regular.ok());

  // Keys are consistent (equi workload): fuzzy matching must not change the
  // integration result.
  ASSERT_EQ(fuzzy->tuples.size(), regular->tuples.size());
  for (size_t i = 0; i < regular->tuples.size(); ++i) {
    EXPECT_EQ(fuzzy->tuples[i].values, regular->tuples[i].values);
  }
}

TEST(IntegrationTest, SchemaMatcherFeedsFuzzyFdWithoutHeaders) {
  // Scramble headers: alignment must come from content, then fuzzy FD must
  // still integrate (the full ALITE pipeline).
  auto t1 = Table::FromRows("T1", {"colA", "colB"},
                            {{Value::String("Berlinn"), Value::String("Germany")},
                             {Value::String("Toronto"), Value::String("Canada")},
                             {Value::String("Barcelona"), Value::String("Spain")}});
  auto t2 = Table::FromRows("T2", {"x1", "x2"},
                            {{Value::String("Berlin"), Value::String("DE")},
                             {Value::String("Toronto"), Value::String("CA")},
                             {Value::String("Madrid"), Value::String("ES")}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::vector<Table> tables{*t1, *t2};

  auto model = MakeModel(ModelKind::kMistral);
  HolisticSchemaMatcher matcher(model);
  auto aligned = matcher.Align(tables);
  ASSERT_TRUE(aligned.ok());
  ASSERT_EQ(aligned->NumUniversal(), 2u);

  FuzzyFdOptions opts;
  opts.matcher.model = model;
  auto result = FuzzyFullDisjunction(opts).RunToTuples(tables, *aligned);
  ASSERT_TRUE(result.ok());
  // Berlinn/Berlin and Toronto/Toronto integrate; Barcelona and Madrid
  // stay separate → 4 tuples.
  EXPECT_EQ(result->tuples.size(), 4u);
}

TEST(IntegrationTest, CsvRoundTripThroughPipeline) {
  // Tables serialized to CSV, re-parsed, then integrated — the realistic
  // data lake ingestion path.
  auto t1 = Table::FromRows("left", {"City", "Country"},
                            {{Value::String("Berlinn"), Value::String("Germany")},
                             {Value::String("Oslo"), Value::String("Norway")}});
  auto t2 = Table::FromRows("right", {"City", "VacRate"},
                            {{Value::String("Berlin"), Value::String("63%")},
                             {Value::String("Lima"), Value::String("71%")}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto r1 = ReadCsv(WriteCsv(*t1), "left");
  auto r2 = ReadCsv(WriteCsv(*t2), "right");
  ASSERT_TRUE(r1.ok() && r2.ok());
  std::vector<Table> tables{*r1, *r2};
  auto aligned = AlignByName(tables);
  ASSERT_TRUE(aligned.ok());
  FuzzyFdOptions opts;
  opts.matcher.model = MakeModel(ModelKind::kMistral);
  auto result = FuzzyFullDisjunction(opts).RunToTuples(tables, *aligned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 3u);  // Berlin merged, Oslo, Lima
}

TEST(IntegrationTest, ThresholdSweepIsWellBehaved) {
  // F1 as a function of θ must rise from ~0 (nothing matches) and not crash
  // anywhere across the sweep — the ablation A1 harness in miniature.
  AutoJoinOptions gen;
  gen.num_sets = 3;
  gen.entities_per_set = 40;
  auto sets = GenerateAutoJoinBenchmark(gen);
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral);

  double f1_tiny = 0, f1_paper = 0;
  for (double theta : {0.01, 0.7}) {
    opts.threshold = theta;
    std::vector<Prf> parts;
    for (const auto& set : sets) parts.push_back(EvaluateSet(set, opts));
    double f1 = MacroAverage(parts).f1;
    if (theta < 0.1) {
      f1_tiny = f1;
    } else {
      f1_paper = f1;
    }
  }
  EXPECT_GT(f1_paper, f1_tiny);
}

}  // namespace
}  // namespace lakefuzz
