// Tests for src/match: holistic schema matching.
#include <gtest/gtest.h>

#include "embedding/model_zoo.h"
#include "match/schema_matcher.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

std::vector<Table> CityTablesWithBadHeaders() {
  // Same content as the paper's setting: headers are unreliable (here:
  // different names per table), so alignment must come from the values.
  auto t1 = Table::FromRows("T1", {"City", "Country"},
                            {{S("Berlin"), S("Germany")},
                             {S("Toronto"), S("Canada")},
                             {S("Barcelona"), S("Spain")},
                             {S("Madrid"), S("Spain")}});
  auto t2 = Table::FromRows("T2", {"place", "nation"},
                            {{S("Toronto"), S("Canada")},
                             {S("Boston"), S("United States")},
                             {S("Berlin"), S("Germany")},
                             {S("Madrid"), S("Spain")}});
  EXPECT_TRUE(t1.ok() && t2.ok());
  return {std::move(t1).value(), std::move(t2).value()};
}

TEST(SchemaMatcherTest, AlignsByContentDespiteHeaders) {
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128));
  auto tables = CityTablesWithBadHeaders();
  auto aligned = matcher.Align(tables);
  ASSERT_TRUE(aligned.ok());
  // City-like columns aligned; country-like columns aligned.
  EXPECT_EQ(aligned->column_map[0][0], aligned->column_map[1][0]);
  EXPECT_EQ(aligned->column_map[0][1], aligned->column_map[1][1]);
  EXPECT_NE(aligned->column_map[0][0], aligned->column_map[0][1]);
  EXPECT_EQ(aligned->NumUniversal(), 2u);
}

TEST(SchemaMatcherTest, NeverMergesColumnsOfOneTable) {
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128));
  // Two near-identical columns inside one table must stay separate.
  auto t = Table::FromRows("T", {"a", "b"},
                           {{S("Berlin"), S("Berlin")},
                            {S("Toronto"), S("Toronto")}});
  ASSERT_TRUE(t.ok());
  auto aligned = matcher.Align({*t});
  ASSERT_TRUE(aligned.ok());
  EXPECT_NE(aligned->column_map[0][0], aligned->column_map[0][1]);
}

TEST(SchemaMatcherTest, UnrelatedColumnsStaySeparate) {
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128));
  auto t1 = Table::FromRows("T1", {"city"},
                            {{S("Berlin")}, {S("Toronto")}});
  auto t2 = Table::FromRows("T2", {"rating"},
                            {{Value::Double(8.5)}, {Value::Double(3.2)}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto aligned = matcher.Align({*t1, *t2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->NumUniversal(), 2u);
}

TEST(SchemaMatcherTest, ThreeTablesTransitiveAlignment) {
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128));
  // c1 and c3 share only one value (signature similarity below threshold),
  // but both overlap c2 heavily — the cluster must still close transitively.
  auto t1 = Table::FromRows("T1", {"c1"}, {{S("Berlin")}, {S("Paris")},
                                           {S("Toronto")}});
  auto t2 = Table::FromRows("T2", {"c2"}, {{S("Berlin")}, {S("Paris")},
                                           {S("Toronto")}, {S("Boston")}});
  auto t3 = Table::FromRows("T3", {"c3"}, {{S("Paris")}, {S("Toronto")},
                                           {S("Boston")}});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  auto aligned = matcher.Align({*t1, *t2, *t3});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->NumUniversal(), 1u);
  EXPECT_EQ(aligned->column_map[0][0], aligned->column_map[2][0]);
}

TEST(SchemaMatcherTest, UniversalNamesPreferMajorityHeader) {
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128));
  auto t1 = Table::FromRows("T1", {"City"}, {{S("Berlin")}, {S("Toronto")}});
  auto t2 = Table::FromRows("T2", {"City"}, {{S("Toronto")}, {S("Boston")}});
  auto t3 = Table::FromRows("T3", {"location"},
                            {{S("Berlin")}, {S("Boston")}});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  auto aligned = matcher.Align({*t1, *t2, *t3});
  ASSERT_TRUE(aligned.ok());
  ASSERT_EQ(aligned->NumUniversal(), 1u);
  EXPECT_EQ(aligned->universal_names[0], "City");
}

TEST(SchemaMatcherTest, ResultValidates) {
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128));
  auto tables = CityTablesWithBadHeaders();
  auto aligned = matcher.Align(tables);
  ASSERT_TRUE(aligned.ok());
  EXPECT_TRUE(ValidateAlignedSchema(*aligned, tables).ok());
}

TEST(SchemaMatcherTest, HigherThresholdSplitsClusters) {
  SchemaMatcherOptions strict;
  strict.similarity_threshold = 1.01;  // nothing can merge
  HolisticSchemaMatcher matcher(MakeModel(ModelKind::kMistral, 128), strict);
  auto tables = CityTablesWithBadHeaders();
  auto aligned = matcher.Align(tables);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->NumUniversal(), 4u);  // every column its own cluster
}

}  // namespace
}  // namespace lakefuzz
