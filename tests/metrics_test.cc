// Tests for src/metrics: P/R/F1, pair evaluation, report tables.
#include <gtest/gtest.h>

#include "metrics/pair_eval.h"
#include "metrics/prf.h"
#include "metrics/report.h"

namespace lakefuzz {
namespace {

TEST(PrfTest, BasicMath) {
  Prf p{/*tp=*/8, /*fp=*/2, /*fn=*/4};
  EXPECT_DOUBLE_EQ(p.precision(), 0.8);
  EXPECT_NEAR(p.recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(p.f1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
}

TEST(PrfTest, EmptyConventions) {
  Prf none;
  EXPECT_DOUBLE_EQ(none.precision(), 1.0);  // nothing predicted
  EXPECT_DOUBLE_EQ(none.recall(), 1.0);     // nothing to find
  Prf all_wrong{0, 3, 2};
  EXPECT_DOUBLE_EQ(all_wrong.precision(), 0.0);
  EXPECT_DOUBLE_EQ(all_wrong.recall(), 0.0);
  EXPECT_DOUBLE_EQ(all_wrong.f1(), 0.0);
}

TEST(PrfTest, ToStringFormat) {
  Prf p{1, 1, 0};
  EXPECT_EQ(p.ToString(), "P=0.50 R=1.00 F1=0.67");
}

TEST(PrfTest, MicroAverageSumsCounts) {
  Prf micro = MicroAverage({Prf{1, 0, 1}, Prf{3, 2, 0}});
  EXPECT_EQ(micro.tp, 4u);
  EXPECT_EQ(micro.fp, 2u);
  EXPECT_EQ(micro.fn, 1u);
}

TEST(PrfTest, MacroAverageAveragesScores) {
  // Part 1: P=1, R=0.5; part 2: P=0.5, R=1.
  MacroPrf macro = MacroAverage({Prf{1, 0, 1}, Prf{1, 1, 0}});
  EXPECT_DOUBLE_EQ(macro.precision, 0.75);
  EXPECT_DOUBLE_EQ(macro.recall, 0.75);
  MacroPrf empty = MacroAverage({});
  EXPECT_DOUBLE_EQ(empty.f1, 0.0);
}

TEST(PairEvalTest, MakePairCanonicalizes) {
  EXPECT_EQ(MakePair(5, 2), MakePair(2, 5));
  EXPECT_EQ(MakePair(2, 5).first, 2u);
}

TEST(PairEvalTest, EvaluatePairsCounts) {
  std::set<ItemPair> pred{MakePair(1, 2), MakePair(3, 4), MakePair(5, 6)};
  std::set<ItemPair> gt{MakePair(1, 2), MakePair(3, 4), MakePair(7, 8)};
  Prf p = EvaluatePairs(pred, gt);
  EXPECT_EQ(p.tp, 2u);
  EXPECT_EQ(p.fp, 1u);
  EXPECT_EQ(p.fn, 1u);
}

TEST(PairEvalTest, ClustersToPairsEnumeratesWithinClusters) {
  auto pairs = ClustersToPairs({{1, 2, 3}, {4}, {5, 6}});
  EXPECT_EQ(pairs.size(), 3u + 0u + 1u);
  EXPECT_TRUE(pairs.count(MakePair(1, 3)));
  EXPECT_FALSE(pairs.count(MakePair(3, 4)));
}

TEST(PairEvalTest, EvaluateClusteringAgainstLabels) {
  // Predicted: {0,1} {2,3}; truth: 0,1,2 share label A, 3 is B.
  Prf p = EvaluateClustering({{0, 1}, {2, 3}},
                             {{0, 100}, {1, 100}, {2, 100}, {3, 200}});
  // GT pairs: (0,1),(0,2),(1,2). Predicted: (0,1) tp, (2,3) fp.
  EXPECT_EQ(p.tp, 1u);
  EXPECT_EQ(p.fp, 1u);
  EXPECT_EQ(p.fn, 2u);
}

TEST(ReportTableTest, RendersAlignedColumns) {
  ReportTable t({"Model", "F1"});
  t.AddRow({"Mistral", "0.82"});
  t.AddRow({"FastText", "0.66"});
  std::string s = t.Render();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("Mistral"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(ReportTableTest, ShortRowsPadded) {
  ReportTable t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string s = t.Render();  // must not crash; missing cells empty
  EXPECT_NE(s.find("only"), std::string::npos);
}

}  // namespace
}  // namespace lakefuzz
