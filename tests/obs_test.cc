// Tests for the observability layer (src/obs/): histogram bucket geometry
// and shard merging, the metrics registry and its text exposition, trace
// trees and their Chrome JSON export, the slow-request log line, and the
// two engine-level contracts — byte-identical results with tracing on or
// off, and span durations that reconcile with the stage stopwatches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/imdb.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"
#include "obs/trace.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketGeometryCoversU64Contiguously) {
  // Values 0..3 land in their own exact buckets.
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
  // Every bucket starts exactly one past the previous bucket's end.
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketLowerBound(i),
              Histogram::BucketUpperBound(i - 1) + 1)
        << "gap or overlap at bucket " << i;
  }
  // Round-trip: each probe value falls inside its own bucket's bounds.
  std::vector<uint64_t> probes = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000,
                                  (1ull << 20) - 1, 1ull << 20,
                                  (1ull << 20) + 1, 1ull << 40,
                                  (1ull << 63) - 1, 1ull << 63, UINT64_MAX};
  for (uint64_t v : probes) {
    const size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v);
    EXPECT_GE(Histogram::BucketUpperBound(b), v);
  }
  // The top bucket reaches UINT64_MAX.
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
  // Relative bucket width (the quantile error bound): <= 25% of the lower
  // bound everywhere past the exact range.
  for (size_t i = 4; i < Histogram::kNumBuckets; ++i) {
    const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
    const double width = static_cast<double>(Histogram::BucketUpperBound(i)) -
                         lo + 1.0;
    EXPECT_LE(width / lo, 0.25 + 1e-9) << "bucket " << i;
  }
}

TEST(HistogramTest, ConcurrentObservesMergeExactly) {
  Histogram hist;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) hist.Observe(t * 100);
    });
  }
  for (auto& w : workers) w.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.total_count, kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) expected_sum += t * 100 * kPerThread;
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(HistogramTest, QuantileWithinBucketErrorBound) {
  Histogram hist;
  for (uint64_t v = 0; v < 1000; ++v) hist.Observe(v);
  const HistogramSnapshot snap = hist.Snapshot();
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = q * 999.0;
    const double est = static_cast<double>(snap.Quantile(q));
    // The log-linear geometry bounds the error by one bucket width: <= 25%
    // relative (plus a couple of counts of rank rounding).
    EXPECT_NEAR(est, exact, exact * 0.25 + 2.0) << "q=" << q;
  }
  // Degenerate cases.
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0u);
  Histogram one;
  one.Observe(42);
  EXPECT_NEAR(static_cast<double>(one.Snapshot().Quantile(0.5)), 42.0, 42.0 * 0.25);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, StablePointersAndKindSafety) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests", "served");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(registry.GetCounter("requests", "served"), c);  // same object
  // Same name, different kind: refused instead of aliased.
  EXPECT_EQ(registry.GetGauge("requests", ""), nullptr);
  EXPECT_EQ(registry.GetHistogram("requests", ""), nullptr);
  c->Add(3);
  Gauge* g = registry.GetGauge("depth", "queue depth");
  g->Set(-7);
  Histogram* h = registry.GetHistogram("lat", "latency");
  h->Observe(100);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  const MetricSample* rs = snap.Find("requests");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(rs->value, 3.0);
  const MetricSample* gs = snap.Find("depth");
  ASSERT_NE(gs, nullptr);
  EXPECT_DOUBLE_EQ(gs->value, -7.0);
  const MetricSample* hs = snap.Find("lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->hist.total_count, 1u);
  EXPECT_EQ(hs->hist.sum, 100u);
}

TEST(MetricsRegistryTest, TextExpositionRendersTheSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("reqs", "requests served")->Add(41);
  registry.GetGauge("depth", "")->Set(5);
  Histogram* h = registry.GetHistogram("lat", "latency ns");
  h->Observe(1);
  h->Observe(1000);

  const MetricsSnapshot snap = registry.Snapshot();
  const std::string text = RenderMetricsText(snap);
  // The exposition is rendered from the same snapshot the API returns, so
  // the numbers agree by construction; spot-check the wire format.
  EXPECT_NE(text.find("# HELP reqs requests served\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs counter\n"), std::string::npos);
  EXPECT_NE(text.find("reqs 41\n"), std::string::npos);
  EXPECT_NE(text.find("depth 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 1001\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2\n"), std::string::npos);
}

// ---------------------------------------------------------------- tracer

TEST(TracerTest, SpanTreeNestingAndAttrs) {
  Tracer tracer;
  const uint64_t root = tracer.BeginSpan("request");
  const uint64_t child = tracer.BeginSpan("fd", root);
  const uint64_t grandchild = tracer.BeginSpan("fd_task", child);
  tracer.AddAttr(grandchild, "nodes", int64_t{42});
  tracer.AddAttr(root, "mode", std::string("integrate"));
  tracer.EndSpan(grandchild);
  tracer.EndSpan(child);
  tracer.EndSpan(root);

  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, child);
  EXPECT_FALSE(spans[2].open);
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);

  // Attribute round-trip through the Chrome export.
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fd_task\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":42"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"integrate\""), std::string::npos);
  EXPECT_NE(json.find(StrFormat("\"parent\":%llu",
                                static_cast<unsigned long long>(child))),
            std::string::npos);

  // Flame summary aggregates by path with indentation by depth.
  const std::string flame = tracer.FlameSummary();
  EXPECT_NE(flame.find("request"), std::string::npos);
  EXPECT_NE(flame.find("  fd"), std::string::npos);
  EXPECT_NE(flame.find("    fd_task"), std::string::npos);
}

TEST(TracerTest, NullIdAndSpanCap) {
  TraceOptions opts;
  opts.max_spans = 2;
  Tracer tracer(opts);
  // The null id is accepted everywhere as a no-op.
  tracer.EndSpan(0);
  tracer.AddAttr(0, "k", int64_t{1});
  EXPECT_EQ(tracer.span_count(), 0u);
  const uint64_t a = tracer.BeginSpan("a");
  const uint64_t b = tracer.BeginSpan("b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(tracer.BeginSpan("c"), 0u);  // over the cap → null id
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(TracerTest, ScopedSpanNullPathIsFree) {
  // A default ScopedSpan and one over a null context are inert.
  ScopedSpan none;
  none.AddAttr("k", int64_t{1});
  none.End();
  EXPECT_FALSE(none.active());
  RequestContext ctx;  // tracer == nullptr
  ScopedSpan via_ctx(ctx, "stage");
  EXPECT_FALSE(via_ctx.active());
  EXPECT_EQ(via_ctx.id(), 0u);
  // kTracingCompiledIn is the compile-time switch; this build has it on.
  EXPECT_TRUE(kTracingCompiledIn);
}

TEST(TracerTest, SlowRequestLineFormat) {
  Tracer tracer;
  const uint64_t root = tracer.BeginSpan("request");
  const uint64_t fd = tracer.BeginSpan("fd", root);
  tracer.EndSpan(fd);
  tracer.EndSpan(root);
  SlowLogInfo info;
  info.request_id = 7;
  info.mode = "integrate";
  info.tables = {"a", "b"};
  info.total_ms = 812.4;
  info.threshold_ms = 500.0;
  info.error = "ok";
  const std::string line = SlowRequestLine(info, &tracer);
  EXPECT_NE(line.find("slow_request id=7 mode=integrate"), std::string::npos);
  EXPECT_NE(line.find("total_ms=812.4"), std::string::npos);
  EXPECT_NE(line.find("threshold_ms=500.0"), std::string::npos);
  EXPECT_NE(line.find("error=ok"), std::string::npos);
  EXPECT_NE(line.find("truncated=0"), std::string::npos);
  EXPECT_NE(line.find("tables=a,b"), std::string::npos);
  EXPECT_NE(line.find("stages=[fd="), std::string::npos);
  // Untraced requests still log, with an empty stage list.
  EXPECT_NE(SlowRequestLine(info, nullptr).find("stages=[]"),
            std::string::npos);
}

// ------------------------------------------------- engine-level contracts

bool TablesEqual(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows() || a.NumColumns() != b.NumColumns()) {
    return false;
  }
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      if (!(a.At(r, c) == b.At(r, c))) return false;
    }
  }
  return true;
}

std::unique_ptr<LakeEngine> MakeImdbEngine(size_t threads,
                                           ImdbBenchmark* bench) {
  ImdbOptions gen;
  gen.target_tuples = 300;
  *bench = GenerateImdb(gen);
  auto engine =
      LakeEngine::Create(EngineOptions().SetNumThreads(threads));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  for (const auto& t : bench->tables) {
    EXPECT_TRUE((*engine)->RegisterTable(t.name(), t).ok());
  }
  return std::move(engine).value();
}

TEST(TracedEngineTest, TracingOnOffByteIdentity) {
  // Tracing is observation-only: the exact same tuples, in the same order,
  // with and without a tracer attached — at 1, 2, and 8 threads.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ImdbBenchmark bench;
    auto engine = MakeImdbEngine(threads, &bench);
    std::vector<std::string> names;
    for (const auto& t : bench.tables) names.push_back(t.name());
    RequestOptions req;
    req.holistic_alignment = false;

    auto plain = engine->Integrate(names, req);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    Tracer tracer;
    RequestOptions traced_req = req;
    traced_req.tracer = &tracer;
    auto traced = engine->Integrate(names, traced_req);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    EXPECT_TRUE(TablesEqual(plain->integrated, traced->integrated))
        << "tracing changed Integrate output at " << threads << " threads";
    EXPECT_GT(tracer.span_count(), 0u);

    // Discovery: identical candidate ranking traced and untraced.
    auto top_plain = engine->DiscoverUnionable(names.front(), 3);
    ASSERT_TRUE(top_plain.ok());
    Tracer dtracer;
    RequestContext dctx;
    dctx.tracer = &dtracer;
    auto top_traced = engine->DiscoverUnionable(names.front(), 3, dctx);
    ASSERT_TRUE(top_traced.ok());
    ASSERT_EQ(top_plain->size(), top_traced->size());
    for (size_t i = 0; i < top_plain->size(); ++i) {
      EXPECT_EQ((*top_plain)[i].name, (*top_traced)[i].name);
      EXPECT_DOUBLE_EQ((*top_plain)[i].score, (*top_traced)[i].score);
    }
    EXPECT_GT(dtracer.span_count(), 0u);
  }
}

class NullSink : public RowSink {
 public:
  Status OnBatch(const std::vector<FdResultTuple>& batch) override {
    rows_ += batch.size();
    return Status::OK();
  }
  size_t rows_ = 0;
};

TEST(TracedEngineTest, DiscoverAndIntegrateSpanCoverageAndReconciliation) {
  ImdbBenchmark bench;
  auto engine = MakeImdbEngine(2, &bench);
  TraceOptions topts;
  topts.request_id = 99;  // stamps the export's pid
  Tracer tracer(topts);
  RequestOptions req;
  req.holistic_alignment = false;
  req.tracer = &tracer;
  req.request_id = 99;
  NullSink sink;
  auto report = engine->DiscoverAndIntegrate(bench.tables.front().name(), 3,
                                             &sink, req);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(sink.rows_, 0u);

  // The span tree covers every pipeline stage.
  std::set<std::string> names;
  for (const Span& s : tracer.Spans()) {
    names.insert(s.name);
    EXPECT_FALSE(s.open) << s.name << " left open";
  }
  for (const char* expected :
       {"request", "discover", "discover_rank", "align", "match", "rewrite",
        "fd", "fd_build", "fd_index", "fd_enumerate", "fd_subsume", "emit"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  // The export is one complete event per span, stamped with the request id.
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":99"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Summed stage-span durations reconcile with the report's stopwatches:
  // total_seconds() = align + match + rewrite + fd, and each of those spans
  // brackets exactly the stopwatch region that fills the report field.
  double span_total = 0.0;
  for (const auto& [stage, seconds] : tracer.StageTotals()) {
    if (stage == "align" || stage == "match" || stage == "rewrite" ||
        stage == "fd") {
      span_total += seconds;
    }
  }
  const double report_total = report->total_seconds();
  EXPECT_NEAR(span_total, report_total,
              report_total * 0.05 + 0.002)
      << "span tree and stopwatches disagree";
}

TEST(TracedEngineTest, MetricsSnapshotCountsRequests) {
  ImdbBenchmark bench;
  auto engine = MakeImdbEngine(2, &bench);
  std::vector<std::string> names;
  for (const auto& t : bench.tables) names.push_back(t.name());
  RequestOptions req;
  req.holistic_alignment = false;
  ASSERT_TRUE(engine->Integrate(names, req).ok());
  ASSERT_TRUE(engine->Integrate(names, req).ok());

  const MetricsSnapshot snap = engine->MetricsSnapshot();
  const MetricSample* total = snap.Find("lakefuzz_requests_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value, 2.0);
  const MetricSample* latency = snap.Find("lakefuzz_request_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->hist.total_count, 2u);
  const MetricSample* tables = snap.Find("lakefuzz_registered_tables");
  ASSERT_NE(tables, nullptr);
  EXPECT_DOUBLE_EQ(tables->value,
                   static_cast<double>(bench.tables.size()));
  const MetricSample* rss = snap.Find("lakefuzz_process_peak_rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_GT(rss->value, 0.0);

  // The text exposition renders exactly this snapshot.
  const std::string text = RenderMetricsText(snap);
  EXPECT_NE(text.find("lakefuzz_requests_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("lakefuzz_request_latency_ns_count 2\n"),
            std::string::npos);
  for (const MetricSample& s : snap.samples) {
    EXPECT_NE(text.find("# TYPE " + s.name + " "), std::string::npos)
        << s.name << " missing from exposition";
  }
}

TEST(TracedEngineTest, SlowLogFiresAboveThreshold) {
  ImdbBenchmark bench;
  ImdbOptions gen;
  gen.target_tuples = 300;
  bench = GenerateImdb(gen);
  std::vector<std::string> slow_lines;
  EngineOptions opts;
  opts.SetNumThreads(1).SetSlowRequestMs(0.0001);  // everything is "slow"
  opts.SetSlowLog([&slow_lines](const std::string& line) {
    slow_lines.push_back(line);
  });
  auto engine = LakeEngine::Create(opts);
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names;
  for (const auto& t : bench.tables) {
    ASSERT_TRUE((*engine)->RegisterTable(t.name(), t).ok());
    names.push_back(t.name());
  }
  Tracer tracer;
  RequestOptions req;
  req.holistic_alignment = false;
  req.tracer = &tracer;
  ASSERT_TRUE((*engine)->Integrate(names, req).ok());
  ASSERT_EQ(slow_lines.size(), 1u);
  EXPECT_NE(slow_lines[0].find("slow_request id=1 mode=integrate"),
            std::string::npos);
  EXPECT_NE(slow_lines[0].find("stages=["), std::string::npos);
  EXPECT_NE(slow_lines[0].find("fd="), std::string::npos);
}

TEST(StatsExportTest, FdExtrasMatchTheStatsFields) {
  FdStats stats;
  stats.intra_tasks = 3;
  stats.task_profile.AddTask(/*nodes=*/10, /*busy=*/2000000, /*replay=*/0);
  stats.task_profile.AddTask(/*nodes=*/30, /*busy=*/4000000, /*replay=*/0);
  stats.pool_tasks = 5;
  stats.pool_busy_seconds = 0.25;
  auto extras = FdExecutionExtras(stats);
  auto find = [&extras](const std::string& key) -> double {
    for (const auto& [k, v] : extras) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing extra: " << key;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(find("intra_tasks"), 3.0);
  EXPECT_DOUBLE_EQ(find("task_nodes_mean"), 20.0);
  EXPECT_DOUBLE_EQ(find("task_nodes_min"), 10.0);
  EXPECT_DOUBLE_EQ(find("task_nodes_max"), 30.0);
  EXPECT_DOUBLE_EQ(find("task_busy_s"), 0.006);
  EXPECT_DOUBLE_EQ(find("pool_tasks"), 5.0);
  EXPECT_DOUBLE_EQ(find("pool_busy_s"), 0.25);
  EXPECT_GT(find("peak_rss_mb"), 0.0);
}

}  // namespace
}  // namespace lakefuzz
