// Tests for the parallel, cache-aware scoring substrate behind
// ValueMatcher::MatchColumns: thread-count determinism on a corrupted-IMDB
// fixture, the EmbeddingCache, the parallel cost-matrix / edge fillers, and
// the pruning string-distance fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "assignment/parallel_cost.h"
#include "core/value_matcher.h"
#include "datagen/corruption.h"
#include "datagen/imdb.h"
#include "embedding/embedding_cache.h"
#include "embedding/hashed_model.h"
#include "embedding/model_zoo.h"
#include "util/rng.h"

namespace lakefuzz {
namespace {

/// Aligning columns derived from IMDB titles: column 0 holds clean
/// primaryTitle values, columns 1 and 2 independently corrupted variants
/// (typos, casing, punctuation — the Auto-Join corruption classes).
std::vector<std::vector<std::string>> CorruptedImdbColumns(size_t max_values) {
  ImdbOptions gen;
  gen.target_tuples = 3000;
  ImdbBenchmark bench = GenerateImdb(gen);
  const Table* title_basics = nullptr;
  for (const auto& t : bench.tables) {
    if (t.name() == "title_basics") title_basics = &t;
  }
  EXPECT_NE(title_basics, nullptr);
  std::vector<std::string> titles;
  for (const auto& v : title_basics->DistinctNonNull(1)) {
    titles.push_back(v.ToString());
    if (titles.size() >= max_values) break;
  }
  EXPECT_GE(titles.size(), 50u);

  CorruptionConfig noisy;
  noisy.typo = 0.6;
  noisy.case_noise = 0.4;
  noisy.punctuation = 0.3;
  std::vector<std::vector<std::string>> columns(3);
  columns[0] = titles;
  Rng rng(0xf1c5);
  for (size_t c = 1; c < 3; ++c) {
    std::set<std::string> seen;
    for (const auto& t : titles) {
      std::string corrupted = Corrupt(&rng, t, noisy);
      if (seen.insert(corrupted).second) columns[c].push_back(corrupted);
    }
    rng.Shuffle(&columns[c]);
  }
  return columns;
}

/// Canonical, comparable form of a match result.
std::vector<std::vector<std::pair<size_t, std::string>>> Canonical(
    const ValueMatchResult& result) {
  std::vector<std::vector<std::pair<size_t, std::string>>> groups;
  groups.reserve(result.groups.size());
  for (const auto& g : result.groups) groups.push_back(g.members);
  std::sort(groups.begin(), groups.end());
  return groups;
}

// ------------------------------------------------- thread-count determinism

TEST(ParallelMatcherTest, EmbeddingResultsIdenticalAcrossThreadCounts) {
  auto columns = CorruptedImdbColumns(120);
  ValueMatchResult baseline;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ValueMatcherOptions opts;
    opts.model = MakeModel(ModelKind::kMistral, 256);
    opts.num_threads = threads;
    auto result = ValueMatcher(opts).MatchColumns(columns);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (threads == 1) {
      baseline = *result;
      continue;
    }
    EXPECT_EQ(Canonical(*result), Canonical(baseline))
        << "groups diverged at num_threads=" << threads;
    EXPECT_EQ(result->stats.exact_matches, baseline.stats.exact_matches);
    EXPECT_EQ(result->stats.assignment_matches,
              baseline.stats.assignment_matches);
    EXPECT_EQ(result->stats.cost_evaluations, baseline.stats.cost_evaluations);
    EXPECT_EQ(result->stats.thresholds_used, baseline.stats.thresholds_used);
  }
}

TEST(ParallelMatcherTest, StringDistanceResultsIdenticalAcrossThreadCounts) {
  auto columns = CorruptedImdbColumns(120);
  ValueMatchResult baseline;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ValueMatcherOptions opts;
    opts.bounded_string_distance =
        MakeBoundedStringDistance(StringDistanceKind::kNormalizedLevenshtein);
    opts.threshold = 0.35;
    // Masking makes the θ-budget pruning path active (see value_matcher.cc);
    // this test then covers pruning and threading together.
    opts.mask_before_solve = true;
    opts.num_threads = threads;
    auto result = ValueMatcher(opts).MatchColumns(columns);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (threads == 1) {
      baseline = *result;
      continue;
    }
    EXPECT_EQ(Canonical(*result), Canonical(baseline));
    EXPECT_EQ(result->stats.pruned_evaluations,
              baseline.stats.pruned_evaluations);
  }
}

TEST(ParallelMatcherTest, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(6), 6u);

  auto columns = CorruptedImdbColumns(60);
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral, 256);
  opts.num_threads = 1;
  auto serial = ValueMatcher(opts).MatchColumns(columns);
  opts.num_threads = 0;
  auto hardware = ValueMatcher(opts).MatchColumns(columns);
  ASSERT_TRUE(serial.ok() && hardware.ok());
  EXPECT_EQ(Canonical(*serial), Canonical(*hardware));
}

// ------------------------------------------------------------ EmbeddingCache

TEST(EmbeddingCacheTest, MemoizesAndNormalizes) {
  auto model = MakeModel(ModelKind::kMistral, 128);
  EmbeddingCache cache(model);
  auto a = cache.GetNormalized("Berlin");
  auto b = cache.GetNormalized("Berlin");
  EXPECT_EQ(a.get(), b.get());  // shared entry, not a copy
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_NEAR(Norm(*a), 1.0, 1e-5);
  // Cached vector matches a direct embed (model is already unit-norm).
  Vec direct = model->Embed("Berlin");
  ASSERT_EQ(a->size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) EXPECT_EQ((*a)[i], direct[i]);
}

TEST(EmbeddingCacheTest, PrenormalizedDistanceMatchesGeneralCosine) {
  auto model = MakeModel(ModelKind::kMistral, 128);
  EmbeddingCache cache(model);
  auto a = cache.GetNormalized("Berlin");
  auto b = cache.GetNormalized("Berlinn");
  EXPECT_NEAR(CosineDistancePrenormalized(*a, *b),
              CosineDistance(model->Embed("Berlin"), model->Embed("Berlinn")),
              1e-5);
}

TEST(EmbeddingCacheTest, UnwrapsCachingModelToAvoidDoubleCaching) {
  HashedModelConfig config;
  config.dim = 64;
  auto caching = std::make_shared<CachingModel>(
      std::make_shared<HashedNgramModel>(config));
  EmbeddingCache cache(caching);
  cache.GetNormalized("Berlin");
  cache.GetNormalized("Paris");
  // The cache embeds via the unwrapped inner model; the outer memo layer
  // must not accumulate a second copy of every vector.
  EXPECT_EQ(caching->CacheSize(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EmbeddingCacheTest, BoundedCacheStillReturnsCorrectVectors) {
  auto model = MakeModel(ModelKind::kMistral, 64);
  EmbeddingCacheOptions opts;
  opts.max_entries = 4;  // bound is global, not per-shard (default 16 shards)
  EmbeddingCache cache(model, opts);
  Rng rng(7);
  for (int round = 0; round < 2; ++round) {
    Rng replay(7);
    for (int i = 0; i < 32; ++i) {
      std::string s = replay.AlphaString(8);
      auto v = cache.GetNormalized(s);
      Vec direct = model->Embed(s);
      for (size_t d = 0; d < direct.size(); ++d) EXPECT_EQ((*v)[d], direct[d]);
    }
  }
  EXPECT_LE(cache.size(), 4u);
}

// ----------------------------------------------------------- parallel fills

TEST(ParallelCostTest, FillMatchesSerialReference) {
  auto fn = [](size_t r, size_t c) {
    return static_cast<double>(r * 131 + c * 17) / 1000.0;
  };
  CostMatrix serial(97, 53);
  FillCostMatrixParallel(&serial, fn, nullptr);
  ThreadPool pool(4);
  CostMatrix parallel(97, 53);
  FillCostMatrixParallel(&parallel, fn, &pool);
  for (size_t r = 0; r < serial.rows(); ++r) {
    for (size_t c = 0; c < serial.cols(); ++c) {
      EXPECT_EQ(serial.at(r, c), parallel.at(r, c));
    }
  }
}

TEST(ParallelCostTest, EdgeScoringMatchesSerialReference) {
  std::vector<SparseEdge> edges;
  for (size_t i = 0; i < 5000; ++i) {
    edges.push_back(SparseEdge{i % 90, i % 41, 0.0});
  }
  auto fn = [](size_t r, size_t c) {
    return static_cast<double>(r * 7 + c * 3) / 100.0;
  };
  std::vector<SparseEdge> serial = edges;
  ScoreEdgesParallel(&serial, fn, nullptr);
  ThreadPool pool(4);
  std::vector<SparseEdge> parallel = edges;
  ScoreEdgesParallel(&parallel, fn, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cost, parallel[i].cost);
  }
}

// ----------------------------------------------------- pruning equivalence

TEST(ParallelMatcherTest, BoundedDistanceNeverPrunesInSolveThenFilterMode) {
  // Default dense mode solves the unconstrained matrix and filters after;
  // a capped cost could change the optimum, so the matcher lifts the budget
  // to 1.0 there — every value exact, zero prunes, identical groups.
  auto columns = CorruptedImdbColumns(100);
  ValueMatcherOptions plain;
  plain.string_distance =
      MakeStringDistance(StringDistanceKind::kNormalizedLevenshtein);
  plain.threshold = 0.35;
  auto unpruned = ValueMatcher(plain).MatchColumns(columns);
  ASSERT_TRUE(unpruned.ok());

  ValueMatcherOptions fast = plain;
  fast.string_distance = nullptr;
  fast.bounded_string_distance =
      MakeBoundedStringDistance(StringDistanceKind::kNormalizedLevenshtein);
  auto bounded = ValueMatcher(fast).MatchColumns(columns);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(Canonical(*bounded), Canonical(*unpruned));
  EXPECT_EQ(bounded->stats.pruned_evaluations, 0u);
  EXPECT_EQ(bounded->stats.cost_evaluations, unpruned->stats.cost_evaluations);
}

TEST(ParallelMatcherTest, PruningPreservesGroupsWhenMaskingBeforeSolve) {
  // With mask_before_solve, any cost >= θ becomes forbidden whether pruned
  // or computed exactly — pruning is provably result-preserving and active.
  auto columns = CorruptedImdbColumns(100);
  ValueMatcherOptions plain;
  plain.string_distance =
      MakeStringDistance(StringDistanceKind::kNormalizedLevenshtein);
  plain.threshold = 0.35;
  plain.mask_before_solve = true;
  auto unpruned = ValueMatcher(plain).MatchColumns(columns);
  ASSERT_TRUE(unpruned.ok());
  EXPECT_EQ(unpruned->stats.pruned_evaluations, 0u);

  ValueMatcherOptions fast = plain;
  fast.string_distance = nullptr;
  fast.bounded_string_distance =
      MakeBoundedStringDistance(StringDistanceKind::kNormalizedLevenshtein);
  auto pruned = ValueMatcher(fast).MatchColumns(columns);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(Canonical(*pruned), Canonical(*unpruned));
  // Shuffled corrupted titles are mostly far apart: the ladder must fire.
  EXPECT_GT(pruned->stats.pruned_evaluations, 0u);
  EXPECT_EQ(pruned->stats.cost_evaluations, unpruned->stats.cost_evaluations);
}

}  // namespace
}  // namespace lakefuzz
