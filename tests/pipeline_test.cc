// Tests for the new-surface APIs: auto-threshold selection, table stats,
// and the IntegrationPipeline facade.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/auto_threshold.h"
#include "core/pipeline.h"
#include "core/value_matcher.h"
#include "embedding/model_zoo.h"
#include "table/csv.h"
#include "table/stats.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

// ---------------------------------------------------------------- AutoTheta

TEST(AutoThresholdTest, FallsBackOnTinyInput) {
  AutoThresholdOptions opts;
  opts.fallback = 0.42;
  EXPECT_DOUBLE_EQ(SelectThresholdByGap({}, opts), 0.42);
  EXPECT_DOUBLE_EQ(SelectThresholdByGap({0.1, 0.9}, opts), 0.42);
}

TEST(AutoThresholdTest, FindsBimodalGap) {
  // Matches near 0.1-0.2, non-matches near 0.9-1.0 → θ in the gap.
  double theta = SelectThresholdByGap(
      {0.05, 0.1, 0.15, 0.2, 0.88, 0.92, 0.95, 1.0});
  EXPECT_GT(theta, 0.3);
  EXPECT_LT(theta, 0.9);
  EXPECT_NEAR(theta, 0.54, 0.01);  // midpoint of 0.2 and 0.88
}

TEST(AutoThresholdTest, UniformSpreadFallsBack) {
  std::vector<double> uniform;
  for (int i = 0; i <= 20; ++i) uniform.push_back(i / 20.0);
  AutoThresholdOptions opts;
  opts.fallback = 0.7;
  EXPECT_DOUBLE_EQ(SelectThresholdByGap(uniform, opts), 0.7);
}

TEST(AutoThresholdTest, GapOutsideWindowIgnored) {
  // Only gap sits at midpoint ~0.15, below the search window.
  AutoThresholdOptions opts;
  opts.min_threshold = 0.3;
  opts.fallback = 0.7;
  double theta =
      SelectThresholdByGap({0.01, 0.02, 0.28, 0.29, 0.30, 0.31}, opts);
  EXPECT_DOUBLE_EQ(theta, 0.7);
}

TEST(AutoThresholdTest, MatcherUsesPerInstanceTheta) {
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral);
  opts.auto_threshold = true;
  opts.exact_match_prepass = false;  // force everything through the solver
  ValueMatcher matcher(opts);
  auto r = matcher.MatchColumns({
      {"Berlinn", "Toronto", "Barcelona", "New Delhi"},
      {"Toronto", "Boston", "Berlin", "Barcelona"},
  });
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->stats.thresholds_used.size(), 1u);
  // The selected θ separated the typo/exact pairs from the non-matches:
  // the same five groups as the fixed-θ run.
  EXPECT_EQ(r->groups.size(), 5u);
}

// ---------------------------------------------------------------- Stats

TEST(TableStatsTest, ComputesCounts) {
  Table t("t", Schema::FromNames({"x"}));
  ASSERT_TRUE(t.AppendRow({S("a")}).ok());
  ASSERT_TRUE(t.AppendRow({S("a")}).ok());
  ASSERT_TRUE(t.AppendRow({S("bbb")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ColumnStats stats = ComputeColumnStats(t, 0);
  EXPECT_EQ(stats.row_count, 4u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.distinct_count, 2u);
  EXPECT_DOUBLE_EQ(stats.null_fraction(), 0.25);
  EXPECT_NEAR(stats.distinct_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.mean_length, (1 + 1 + 3) / 3.0, 1e-12);
  EXPECT_EQ(stats.dominant_type(), ValueType::kString);
}

TEST(TableStatsTest, DominantTypeMixedColumn) {
  Table t("t", Schema::FromNames({"x"}));
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(2)}).ok());
  ASSERT_TRUE(t.AppendRow({S("three")}).ok());
  EXPECT_EQ(ComputeColumnStats(t, 0).dominant_type(), ValueType::kInt64);
}

TEST(TableStatsTest, AllNullColumn) {
  Table t("t", Schema::FromNames({"x"}));
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ColumnStats stats = ComputeColumnStats(t, 0);
  EXPECT_EQ(stats.dominant_type(), ValueType::kNull);
  EXPECT_DOUBLE_EQ(stats.distinct_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_length, 0.0);
}

TEST(TableStatsTest, RenderMentionsKeyNumbers) {
  Table t("t", Schema::FromNames({"x"}));
  ASSERT_TRUE(t.AppendRow({S("v")}).ok());
  std::string s = RenderColumnStats(ComputeColumnStats(t, 0));
  EXPECT_NE(s.find("rows=1"), std::string::npos);
  EXPECT_NE(s.find("type=string"), std::string::npos);
}

// ---------------------------------------------------------------- Pipeline

std::vector<Table> SmallIntegrationSet() {
  auto t1 = Table::FromRows("a", {"City", "Country"},
                            {{S("Berlinn"), S("Germany")},
                             {S("Toronto"), S("Canada")}});
  auto t2 = Table::FromRows("b", {"City", "VacRate"},
                            {{S("Berlin"), S("63%")},
                             {S("Lima"), S("71%")}});
  EXPECT_TRUE(t1.ok() && t2.ok());
  return {std::move(t1).value(), std::move(t2).value()};
}

TEST(PipelineTest, EmptyInputRejected) {
  EXPECT_FALSE(IntegrateTables({}).ok());
}

TEST(PipelineTest, FuzzyEndToEnd) {
  PipelineOptions opts;
  opts.holistic_alignment = false;  // headers are good here
  auto result = IntegrateTables(SmallIntegrationSet(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->integrated.NumRows(), 3u);  // Berlin merged, Toronto, Lima
  EXPECT_GT(result->report.values_rewritten, 0u);
}

TEST(PipelineTest, RegularFdMode) {
  PipelineOptions opts;
  opts.holistic_alignment = false;
  opts.fuzzy = false;
  auto result = IntegrateTables(SmallIntegrationSet(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->integrated.NumRows(), 4u);  // Berlinn stays fragmented
}

TEST(PipelineTest, HolisticAlignmentMode) {
  PipelineOptions opts;
  opts.holistic_alignment = true;
  auto result = IntegrateTables(SmallIntegrationSet(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->aligned.NumUniversal(), 2u);
  EXPECT_GE(result->align_seconds, 0.0);
}

TEST(PipelineTest, ProvenanceColumnOptIn) {
  PipelineOptions opts;
  opts.holistic_alignment = false;
  opts.include_provenance = true;
  auto result = IntegrateTables(SmallIntegrationSet(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->integrated.schema().field(0).name, "TIDs");
}

TEST(PipelineTest, CsvFilesRoundTrip) {
  std::string dir = testing::TempDir() + "/lakefuzz_pipeline";
  std::filesystem::create_directories(dir);
  auto tables = SmallIntegrationSet();
  std::vector<std::string> paths;
  for (const auto& t : tables) {
    std::string path = dir + "/" + t.name() + ".csv";
    ASSERT_TRUE(WriteCsvFile(t, path).ok());
    paths.push_back(path);
  }
  PipelineOptions opts;
  opts.holistic_alignment = false;
  auto result = IntegrateCsvFiles(paths, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->integrated.NumRows(), 3u);
}

TEST(PipelineTest, MissingCsvSurfacesIoError) {
  auto result = IntegrateCsvFiles({"/nonexistent/x.csv"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace lakefuzz
