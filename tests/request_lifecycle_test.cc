// Request lifecycle hardening: deadlines, resource budgets, graceful
// degradation (BudgetPolicy::kTruncate partial results + Truncation
// reports), admission control, and the CSV robustness guards.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "core/engine.h"
#include "fd/full_disjunction.h"
#include "fd/parallel.h"
#include "fd/problem.h"
#include "table/csv.h"
#include "util/request_context.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

Value S(const char* s) { return Value::String(s); }

std::vector<Table> SmallIntegrationSet() {
  auto t1 = Table::FromRows("a", {"City", "Country"},
                            {{S("Berlinn"), S("Germany")},
                             {S("Toronto"), S("Canada")}});
  auto t2 = Table::FromRows("b", {"City", "VacRate"},
                            {{S("Berlin"), S("63%")},
                             {S("Lima"), S("71%")}});
  EXPECT_TRUE(t1.ok() && t2.ok());
  return {std::move(t1).value(), std::move(t2).value()};
}

std::unique_ptr<LakeEngine> MakeEngineWithSmallSet(
    EngineOptions options = EngineOptions()) {
  auto engine = LakeEngine::Create(std::move(options));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto tables = SmallIntegrationSet();
  EXPECT_TRUE((*engine)->RegisterTable("a", tables[0]).ok());
  EXPECT_TRUE((*engine)->RegisterTable("b", tables[1]).ok());
  return std::move(engine).value();
}

/// One giant join component (every tuple shares the "hub" value) — the
/// bench-style instance whose FD stage is long enough that a mid-request
/// deadline lands inside enumeration, not after it.
std::vector<Table> GiantComponentTables(size_t num_tables, size_t num_keys,
                                        size_t rows_per_key) {
  std::vector<Table> tables;
  for (size_t l = 0; l < num_tables; ++l) {
    Table t("t" + std::to_string(l),
            Schema::FromNames({"key", "hub", "p" + std::to_string(l)}));
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t r = 0; r < rows_per_key; ++r) {
        EXPECT_TRUE(t.AppendRow({S(("k" + std::to_string(k)).c_str()),
                                 S("hub"),
                                 Value::String(StrFormat("v%zu_%zu_%zu", l, k,
                                                         r))})
                        .ok());
      }
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

/// Two independent non-trivial join components (one per hub value), each
/// small enough to finish inside the enumerator's first 1024-node budget
/// block — the shape that makes "first component completes, second is cut"
/// deterministic.
std::vector<Table> TwoComponentTables() {
  std::vector<Table> tables;
  for (size_t l = 0; l < 3; ++l) {
    Table t("t" + std::to_string(l),
            Schema::FromNames({"key", "hub", "p" + std::to_string(l)}));
    for (const char* hub : {"hubA", "hubB"}) {
      for (size_t k = 0; k < 4; ++k) {
        for (size_t r = 0; r < 2; ++r) {
          EXPECT_TRUE(
              t.AppendRow({Value::String(StrFormat("%s_k%zu", hub, k)),
                           S(hub),
                           Value::String(StrFormat("%s_v%zu_%zu_%zu", hub, l,
                                                   k, r))})
                  .ok());
        }
      }
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

/// Registers every table under its own name; returns the name list.
std::vector<std::string> RegisterAll(LakeEngine* engine,
                                     std::vector<Table> tables) {
  std::vector<std::string> names;
  for (auto& t : tables) {
    std::string name = t.name();
    names.push_back(name);
    EXPECT_TRUE(engine->RegisterTable(name, std::move(t)).ok());
  }
  return names;
}

Result<FdProblem> BuildByName(const std::vector<Table>& tables) {
  auto aligned = AlignByName(tables);
  EXPECT_TRUE(aligned.ok());
  return FdProblem::Build(tables, *aligned);
}

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, UnsetNeverExpires) {
  Deadline unset;
  EXPECT_FALSE(unset.set());
  EXPECT_FALSE(unset.expired());
}

TEST(DeadlineTest, ZeroMillisExpiresImmediately) {
  Deadline now = Deadline::AfterMillis(0);
  EXPECT_TRUE(now.set());
  EXPECT_TRUE(now.expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline later = Deadline::AfterMillis(60'000);
  EXPECT_TRUE(later.set());
  EXPECT_FALSE(later.expired());
}

// --------------------------------------------------------- RequestContext

TEST(RequestContextTest, CheckStopPrefersCancellationOverDeadline) {
  RequestContext ctx;
  ctx.cancel = CancelToken::Create();
  ctx.cancel.Cancel();
  ctx.deadline = Deadline::AfterMillis(0);
  EXPECT_EQ(ctx.CheckStop("stage").code(), ErrorCode::kCancelled);
}

TEST(RequestContextTest, CheckStopNamesTheStage) {
  RequestContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  Status stop = ctx.CheckStop("value matching");
  EXPECT_EQ(stop.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(stop.message().find("value matching"), std::string::npos);
}

TEST(RequestContextTest, ShouldTruncateMatrix) {
  RequestContext fail_ctx;  // default kFail
  EXPECT_FALSE(fail_ctx.ShouldTruncate(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(fail_ctx.ShouldTruncate(ErrorCode::kResourceExhausted));

  RequestContext trunc_ctx;
  trunc_ctx.policy = BudgetPolicy::kTruncate;
  EXPECT_TRUE(trunc_ctx.ShouldTruncate(ErrorCode::kDeadlineExceeded));
  EXPECT_TRUE(trunc_ctx.ShouldTruncate(ErrorCode::kResourceExhausted));
  // Cancellation never degrades to a partial result.
  EXPECT_FALSE(trunc_ctx.ShouldTruncate(ErrorCode::kCancelled));
  EXPECT_FALSE(trunc_ctx.ShouldTruncate(ErrorCode::kInternal));
}

TEST(RequestContextTest, CancelOnlyKeepsTokenDropsDeadlineAndBudget) {
  RequestContext ctx;
  ctx.cancel = CancelToken::Create();
  ctx.deadline = Deadline::AfterMillis(0);
  ctx.budget.max_fd_nodes = 7;
  ctx.policy = BudgetPolicy::kTruncate;

  RequestContext cleanup = ctx.CancelOnly();
  EXPECT_TRUE(cleanup.CheckStop("cleanup").ok());  // deadline gone
  EXPECT_EQ(cleanup.budget.max_fd_nodes, 0u);
  ctx.cancel.Cancel();
  EXPECT_EQ(cleanup.CheckStop("cleanup").code(), ErrorCode::kCancelled);
}

TEST(TruncationTest, MergeFirstCutWinsCountersAccumulate) {
  Truncation first;
  first.truncated = true;
  first.stage = Stage::kMatch;
  first.reason = "deadline";
  first.components_completed = 2;

  Truncation second;
  second.truncated = true;
  second.stage = Stage::kEmit;
  second.reason = "budget";
  second.components_completed = 3;
  second.tuples_emitted = 9;

  first.Merge(second);
  EXPECT_TRUE(first.truncated);
  EXPECT_EQ(first.stage, Stage::kMatch);  // first cut keeps the slot
  EXPECT_EQ(first.reason, "deadline");
  EXPECT_EQ(first.components_completed, 5u);
  EXPECT_EQ(first.tuples_emitted, 9u);

  Truncation complete;  // merging a complete stage changes nothing
  first.Merge(complete);
  EXPECT_EQ(first.components_completed, 5u);

  Truncation fresh;
  fresh.Merge(second);  // merging into a complete one adopts the cut
  EXPECT_TRUE(fresh.truncated);
  EXPECT_EQ(fresh.stage, Stage::kEmit);
}

// --------------------------------------------------------- FD executors

TEST(FdDeadlineTest, SerialExpiredDeadlineFailsByDefault) {
  auto problem = BuildByName(SmallIntegrationSet());
  ASSERT_TRUE(problem.ok());
  RequestContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  FdStats stats;
  auto result = FullDisjunction().RunCodes(&*problem, &stats, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(FdDeadlineTest, SerialExpiredDeadlineTruncatesUnderPolicy) {
  auto problem = BuildByName(SmallIntegrationSet());
  ASSERT_TRUE(problem.ok());
  RequestContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  ctx.policy = BudgetPolicy::kTruncate;
  FdStats stats;
  auto result = FullDisjunction().RunCodes(&*problem, &stats, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_TRUE(stats.truncation.truncated);
  EXPECT_EQ(stats.truncation.stage, Stage::kFdEnumerate);
  EXPECT_EQ(stats.truncation.components_completed, 0u);
  EXPECT_GT(stats.truncation.components_skipped, 0u);
  EXPECT_NE(stats.truncation.reason.find("deadline"), std::string::npos);
}

TEST(FdDeadlineTest, ParallelExpiredDeadlineTruncatesUnderPolicy) {
  auto problem = BuildByName(SmallIntegrationSet());
  ASSERT_TRUE(problem.ok());
  RequestContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  ctx.policy = BudgetPolicy::kTruncate;
  ParallelFdOptions opts;
  opts.num_threads = 4;
  FdStats stats;
  auto result = ParallelFullDisjunction(opts).RunCodes(&*problem, &stats, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_TRUE(stats.truncation.truncated);
  EXPECT_EQ(stats.truncation.components_completed, 0u);
  EXPECT_GT(stats.truncation.components_skipped, 0u);
}

// ----------------------------------------------------- engine deadlines

/// Acceptance instance: a 50 ms deadline expires while the progress
/// callback stalls the request at the FD-build boundary, so the very next
/// checkpoint must surface the stop — bounded return, not a full run.
TEST(EngineDeadlineTest, GiantComponentFiftyMsDeadlineReturnsBounded) {
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names =
      RegisterAll(engine->get(), GiantComponentTables(4, 24, 2));
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.deadline = Deadline::AfterMillis(50);
  req.progress = [](const ProgressEvent& e) {
    if (e.stage == Stage::kFdBuild && e.done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  };
  const auto start = std::chrono::steady_clock::now();
  auto result = (*engine)->Integrate(names, req);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.code(), ErrorCode::kDeadlineExceeded);
  // One checkpoint interval past the stall, with head-room for sanitizers.
  EXPECT_LT(elapsed, std::chrono::seconds(2));

  // The engine survives: the same request without the deadline completes.
  RequestOptions clean;
  clean.holistic_alignment = false;
  clean.fuzzy = false;
  EXPECT_TRUE((*engine)->Integrate(names, clean).ok());
}

TEST(EngineDeadlineTest, GiantComponentTruncatePolicyReturnsPartial) {
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names =
      RegisterAll(engine->get(), GiantComponentTables(4, 24, 2));
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.deadline = Deadline::AfterMillis(50);
  req.budget_policy = BudgetPolicy::kTruncate;
  req.progress = [](const ProgressEvent& e) {
    if (e.stage == Stage::kFdBuild && e.done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  };
  auto result = (*engine)->Integrate(names, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Truncation& cut = result->report.truncation;
  EXPECT_TRUE(cut.truncated);
  EXPECT_EQ(cut.stage, Stage::kFdEnumerate);
  EXPECT_GT(cut.components_skipped, 0u);
  EXPECT_EQ(result->integrated.NumRows(), cut.tuples_emitted);
}

TEST(EngineDeadlineTest, FuzzyMatchStageTruncatesUnderPolicy) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.deadline = Deadline::AfterMillis(50);
  req.budget_policy = BudgetPolicy::kTruncate;
  req.progress = [](const ProgressEvent& e) {
    if (e.stage == Stage::kMatch && e.done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  };
  auto result = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.truncation.truncated);
  // The match stage was the first cut; it keeps the stage/reason slot even
  // though the FD stage truncated behind it too.
  EXPECT_EQ(result->report.truncation.stage, Stage::kMatch);
}

TEST(EngineDeadlineTest, FuzzyMatchStageDeadlineFailsByDefault) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.deadline = Deadline::AfterMillis(50);
  req.progress = [](const ProgressEvent& e) {
    if (e.stage == Stage::kMatch && e.done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  };
  EXPECT_EQ(engine->Integrate({"a", "b"}, req).code(),
            ErrorCode::kDeadlineExceeded);
}

// ------------------------------------------------------- engine budgets

TEST(EngineBudgetTest, FdNodeBudgetFailsHardByDefault) {
  // The giant component needs far more than the single granted 1024-node
  // block, so a one-node budget reliably exhausts mid-enumeration.
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names =
      RegisterAll(engine->get(), GiantComponentTables(4, 24, 2));
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.budget.max_fd_nodes = 1;
  auto result = (*engine)->Integrate(names, req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("max_fd_nodes"),
            std::string::npos);
}

TEST(EngineBudgetTest, FdNodeBudgetTruncatesToCompletedComponents) {
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names =
      RegisterAll(engine->get(), TwoComponentTables());

  RequestOptions clean;
  clean.holistic_alignment = false;
  clean.fuzzy = false;
  auto full = (*engine)->Integrate(names, clean);
  ASSERT_TRUE(full.ok());

  RequestOptions req = clean;
  req.budget.max_fd_nodes = 1;
  req.budget_policy = BudgetPolicy::kTruncate;
  auto result = (*engine)->Integrate(names, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Truncation& cut = result->report.truncation;
  EXPECT_TRUE(cut.truncated);
  EXPECT_NE(cut.reason.find("max_fd_nodes"), std::string::npos);
  // The first 1024-node block is always granted and covers the whole first
  // component; the second component's draw then finds the settled counter
  // negative and is skipped.
  EXPECT_EQ(cut.components_completed, 1u);
  EXPECT_EQ(cut.components_skipped, 1u);
  EXPECT_EQ(result->integrated.NumRows(), cut.tuples_emitted);
  EXPECT_GT(result->integrated.NumRows(), 0u);
  EXPECT_LT(result->integrated.NumRows(), full->integrated.NumRows());
}

TEST(EngineBudgetTest, LegacyMaxSearchNodesKeepsFailedPrecondition) {
  // The library-wide FdOptions::max_search_nodes safety valve (no request
  // budget set) must keep its historical error code.
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names =
      RegisterAll(engine->get(), GiantComponentTables(4, 24, 2));
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.fuzzy_fd.fd.max_search_nodes = 1;
  EXPECT_EQ((*engine)->Integrate(names, req).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(EngineBudgetTest, ScratchBudgetStopsBetweenComponents) {
  // The scratch check runs between components, so it needs a lake whose
  // first (non-trivial) component actually reserves arena bytes.
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> names =
      RegisterAll(engine->get(), TwoComponentTables());
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.budget.max_scratch_bytes = 1;  // first component's reservation exceeds
  auto hard = (*engine)->Integrate(names, req);
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(hard.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(hard.status().message().find("max_scratch_bytes"),
            std::string::npos);

  req.budget_policy = BudgetPolicy::kTruncate;
  auto partial = (*engine)->Integrate(names, req);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->report.truncation.truncated);
  EXPECT_GE(partial->report.truncation.components_completed, 1u);
}

TEST(EngineBudgetTest, ResultTupleBudgetFailsHardByDefault) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;  // 4 result tuples
  req.budget.max_result_tuples = 2;
  auto result = engine->Integrate({"a", "b"}, req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("max_result_tuples"),
            std::string::npos);
}

TEST(EngineBudgetTest, ResultTupleBudgetTruncatesDeterministically) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.budget.max_result_tuples = 2;
  req.budget_policy = BudgetPolicy::kTruncate;
  auto result = engine->Integrate({"a", "b"}, req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->integrated.NumRows(), 2u);
  const Truncation& cut = result->report.truncation;
  EXPECT_TRUE(cut.truncated);
  EXPECT_EQ(cut.stage, Stage::kEmit);
  EXPECT_EQ(cut.tuples_emitted, 2u);

  // The cut is a prefix of the full result in deterministic output order.
  RequestOptions full_req;
  full_req.holistic_alignment = false;
  full_req.fuzzy = false;
  auto full = engine->Integrate({"a", "b"}, full_req);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->integrated.NumRows(), 4u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < full->integrated.NumColumns(); ++c) {
      EXPECT_TRUE(result->integrated.At(r, c) == full->integrated.At(r, c));
    }
  }
}

TEST(EngineBudgetTest, ResultTupleBudgetTruncatesStreamingToo) {
  class Collecting : public RowSink {
   public:
    Status OnBatch(const std::vector<FdResultTuple>& batch) override {
      count += batch.size();
      return Status::OK();
    }
    Status End(const FuzzyFdReport&) override {
      ended = true;
      return Status::OK();
    }
    size_t count = 0;
    bool ended = false;
  };
  auto engine = MakeEngineWithSmallSet();
  Collecting sink;
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  req.budget.max_result_tuples = 2;
  req.budget_policy = BudgetPolicy::kTruncate;
  auto report = engine->IntegrateToSink({"a", "b"}, &sink, req);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(sink.ended);
  EXPECT_EQ(sink.count, 2u);
  EXPECT_TRUE(report->truncation.truncated);
  EXPECT_EQ(report->truncation.tuples_emitted, 2u);
}

// ------------------------------------------------------------- admission

/// A sink whose Begin() parks the request until the test releases it —
/// holds an admission slot open at a deterministic point.
class GateSink : public RowSink {
 public:
  Status Begin(const std::vector<std::string>&) override {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    return Status::OK();
  }
  Status OnBatch(const std::vector<FdResultTuple>&) override {
    return Status::OK();
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(EngineAdmissionTest, UnlimitedEngineOnlyCounts) {
  auto engine = MakeEngineWithSmallSet();
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  ASSERT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  AdmissionStats stats = engine->admission_stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(EngineAdmissionTest, OverloadBeyondQueueRejectsFast) {
  auto engine = MakeEngineWithSmallSet(
      EngineOptions().SetMaxConcurrentRequests(1).SetMaxQueuedRequests(0));
  GateSink gate;
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  Result<FuzzyFdReport> first = Status::Internal("unset");
  std::thread holder([&] {
    first = engine->IntegrateToSink({"a", "b"}, &gate, req);
  });
  gate.AwaitEntered();  // the slot is definitely held now

  auto rejected = engine->Integrate({"a", "b"}, req);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("overloaded"),
            std::string::npos);

  gate.Release();
  holder.join();
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // The freed slot serves the next request; counters tell the story.
  EXPECT_TRUE(engine->Integrate({"a", "b"}, req).ok());
  AdmissionStats stats = engine->admission_stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(EngineAdmissionTest, QueuedRequestHonorsDeadline) {
  auto engine = MakeEngineWithSmallSet(
      EngineOptions().SetMaxConcurrentRequests(1).SetMaxQueuedRequests(4));
  GateSink gate;
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  Result<FuzzyFdReport> first = Status::Internal("unset");
  std::thread holder([&] {
    first = engine->IntegrateToSink({"a", "b"}, &gate, req);
  });
  gate.AwaitEntered();

  RequestOptions queued = req;
  queued.deadline = Deadline::AfterMillis(60);
  // A queue-wait stop has no partial result: it fails hard even under
  // kTruncate.
  queued.budget_policy = BudgetPolicy::kTruncate;
  auto timed_out = engine->Integrate({"a", "b"}, queued);
  EXPECT_EQ(timed_out.code(), ErrorCode::kDeadlineExceeded);

  gate.Release();
  holder.join();
  ASSERT_TRUE(first.ok());
  AdmissionStats stats = engine->admission_stats();
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.admitted, 1u);
}

TEST(EngineAdmissionTest, QueuedRequestProceedsWhenSlotFrees) {
  auto engine = MakeEngineWithSmallSet(
      EngineOptions().SetMaxConcurrentRequests(1).SetMaxQueuedRequests(4));
  GateSink gate;
  RequestOptions req;
  req.holistic_alignment = false;
  req.fuzzy = false;
  Result<FuzzyFdReport> first = Status::Internal("unset");
  std::thread holder([&] {
    first = engine->IntegrateToSink({"a", "b"}, &gate, req);
  });
  gate.AwaitEntered();

  Result<PipelineResult> second = Status::Internal("unset");
  std::thread waiter([&] { second = engine->Integrate({"a", "b"}, req); });
  // Wait until the second request is observably parked in the queue.
  while (engine->admission_stats().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Release();
  holder.join();
  waiter.join();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  AdmissionStats stats = engine->admission_stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

// ---------------------------------------------------- discovery deadlines

TEST(EngineDiscoveryTest, ExpiredDeadlineFailsByDefault) {
  auto engine = MakeEngineWithSmallSet();
  RequestContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  auto result = engine->DiscoverUnionable("a", 1, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kDeadlineExceeded);
}

TEST(EngineDiscoveryTest, ExpiredDeadlineTruncatesToBestSoFar) {
  auto engine = MakeEngineWithSmallSet();
  RequestContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  ctx.policy = BudgetPolicy::kTruncate;
  Truncation cut;
  auto result = engine->DiscoverUnionable("a", 1, ctx, &cut);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(cut.truncated);
  EXPECT_EQ(cut.stage, Stage::kDiscover);
  EXPECT_LE(result->size(), 1u);
}

TEST(EngineDiscoveryTest, CancelledDiscoveryFailsEvenUnderTruncate) {
  auto engine = MakeEngineWithSmallSet();
  RequestContext ctx;
  ctx.cancel = CancelToken::Create();
  ctx.cancel.Cancel();
  ctx.policy = BudgetPolicy::kTruncate;
  EXPECT_EQ(engine->DiscoverUnionable("a", 1, ctx).code(),
            ErrorCode::kCancelled);
}

TEST(EngineDiscoveryTest, CleanQueryAfterTruncatedOneIsComplete) {
  auto engine = MakeEngineWithSmallSet();
  RequestContext expired;
  expired.deadline = Deadline::AfterMillis(0);
  expired.policy = BudgetPolicy::kTruncate;
  Truncation cut;
  ASSERT_TRUE(engine->DiscoverUnionable("a", 1, expired, &cut).ok());

  auto clean = engine->DiscoverUnionable("a", 1);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->size(), 1u);
  EXPECT_EQ((*clean)[0].name, "b");
}

// ------------------------------------------------------------ CSV guards

TEST(CsvLimitsTest, UnquotedCellOverLimitIsInvalidArgument) {
  CsvOptions opts;
  opts.max_cell_bytes = 8;
  auto table = ReadCsv("City\nWaylandSpringsUponAvon\n", "t", opts);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("max_cell_bytes"),
            std::string::npos);
}

TEST(CsvLimitsTest, QuotedCellOverLimitIsInvalidArgument) {
  CsvOptions opts;
  opts.max_cell_bytes = 8;
  auto table = ReadCsv("City\n\"a very long quoted cell\"\n", "t", opts);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.code(), ErrorCode::kInvalidArgument);
}

TEST(CsvLimitsTest, ZeroDisablesTheCellLimit) {
  CsvOptions opts;
  opts.max_cell_bytes = 0;
  std::string big(1 << 16, 'x');
  auto table = ReadCsv("City\n" + big + "\n", "t", opts);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 1u);
}

TEST(CsvLimitsTest, MissingFileIsIoErrorNamingThePath) {
  const std::string path = "/nonexistent/lakefuzz_missing.csv";
  auto table = ReadCsvFile(path);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.code(), ErrorCode::kIoError);
  EXPECT_NE(table.status().message().find(path), std::string::npos);
}

TEST(CsvLimitsTest, DirectoryIsIoError) {
  auto table = ReadCsvFile(testing::TempDir());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.code(), ErrorCode::kIoError);
  EXPECT_NE(table.status().message().find("not a regular file"),
            std::string::npos);
}

TEST(CsvLimitsTest, EngineRegisterCsvSurfacesIoError) {
  auto engine = LakeEngine::Create();
  ASSERT_TRUE(engine.ok());
  Status missing =
      (*engine)->RegisterCsv("t", "/nonexistent/lakefuzz_missing.csv");
  EXPECT_EQ(missing.code(), ErrorCode::kIoError);
  EXPECT_EQ((*engine)->NumTables(), 0u);
}

}  // namespace
}  // namespace lakefuzz
