// Robustness tests: adversarial CSV inputs, degenerate matcher inputs, and
// edge cases a data lake actually throws at an integration system.
#include <gtest/gtest.h>

#include "core/blocking.h"
#include "core/value_matcher.h"
#include "embedding/model_zoo.h"
#include "table/csv.h"
#include "table/print.h"
#include "fd/full_disjunction.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- CSV

TEST(CsvRobustnessTest, HeaderOnlyFile) {
  auto r = ReadCsv("a,b,c\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
  EXPECT_EQ(r->NumColumns(), 3u);
}

TEST(CsvRobustnessTest, BareCarriageReturnLineEndings) {
  auto r = ReadCsv("a,b\r1,2\r3,4\r", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->At(1, 1), Value::Int(4));
}

TEST(CsvRobustnessTest, TrailingDelimiterMakesEmptyField) {
  auto r = ReadCsv("a,b\n1,\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->At(0, 1).is_null());
}

TEST(CsvRobustnessTest, QuotedEmptyStringIsNull) {
  // A quoted empty field carries no text; both spellings read back as null.
  auto r = ReadCsv("a,b\n\"\",x\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->At(0, 0).is_null());
}

TEST(CsvRobustnessTest, VeryWideField) {
  std::string big(100000, 'x');
  auto r = ReadCsv("a\n" + big + "\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 0).AsString().size(), big.size());
}

TEST(CsvRobustnessTest, ManyRowsRoundTrip) {
  std::string csv = "k,v\n";
  for (int i = 0; i < 5000; ++i) {
    csv += std::to_string(i) + ",val" + std::to_string(i) + "\n";
  }
  auto r = ReadCsv(csv, "t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 5000u);
  auto rt = ReadCsv(WriteCsv(*r), "t");
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->NumRows(), 5000u);
  EXPECT_EQ(rt->At(4999, 1), Value::String("val4999"));
}

TEST(CsvRobustnessTest, Utf8ContentRoundTrips) {
  auto r = ReadCsv("city\nZürich\nСофия\n東京\n", "t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 3u);
  auto rt = ReadCsv(WriteCsv(*r), "t");
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->At(0, 0), Value::String("Zürich"));
  EXPECT_EQ(rt->At(2, 0), Value::String("東京"));
}

// ---------------------------------------------------------------- Matcher

TEST(MatcherRobustnessTest, EmptyColumnsInSet) {
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral, 64);
  ValueMatcher matcher(opts);
  auto r = matcher.MatchColumns({{}, {"Berlin"}, {}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 1u);
  EXPECT_EQ(r->groups[0].members[0],
            (std::pair<size_t, std::string>{1, "Berlin"}));
}

TEST(MatcherRobustnessTest, WildlyUnequalColumnSizes) {
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral, 64);
  std::vector<std::string> big;
  for (int i = 0; i < 300; ++i) big.push_back("value_" + std::to_string(i));
  auto r = ValueMatcher(opts).MatchColumns({big, {"value_7"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 300u);
  EXPECT_EQ(r->stats.exact_matches, 1u);
}

TEST(MatcherRobustnessTest, WhitespaceOnlyValues) {
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral, 64);
  auto r = ValueMatcher(opts).MatchColumns({{" ", "Berlin"}, {"  ", "x"}});
  ASSERT_TRUE(r.ok());  // must not crash; groups well-formed
  size_t members = 0;
  for (const auto& g : r->groups) members += g.members.size();
  EXPECT_EQ(members, 4u);
}

TEST(MatcherRobustnessTest, LongValuesDoNotBlowUp) {
  ValueMatcherOptions opts;
  opts.model = MakeModel(ModelKind::kMistral, 64);
  std::string long_a(5000, 'a');
  std::string long_b = long_a;
  long_b[2500] = 'b';
  auto r = ValueMatcher(opts).MatchColumns({{long_a}, {long_b}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 1u);  // near-identical giants match
}

// ---------------------------------------------------------------- Blocking

TEST(BlockingRobustnessTest, EmptySidesYieldNoCandidates) {
  BlockingOptions opts;
  EXPECT_TRUE(GenerateCandidates({}, {"x"}, opts).empty());
  EXPECT_TRUE(GenerateCandidates({"x"}, {}, opts).empty());
  EXPECT_TRUE(GenerateCandidates({}, {}, opts).empty());
}

TEST(BlockingRobustnessTest, StopGramSuppressionCapsFanout) {
  // 200 values sharing one dominant trigram: postings above the frequency
  // cap are skipped, so the candidate count stays far below 200 × 200.
  std::vector<std::string> left, right;
  for (int i = 0; i < 200; ++i) {
    left.push_back("commonprefix_left_" + std::to_string(i));
    right.push_back("commonprefix_right_" + std::to_string(i));
  }
  BlockingOptions opts;
  auto pairs = GenerateCandidates(left, right, opts);
  EXPECT_LT(pairs.size(), 200u * 200u / 4);
}

// ---------------------------------------------------------------- Print / FD

TEST(PrintRobustnessTest, ZeroColumnTable) {
  Table t("empty", Schema());
  std::string s = RenderTable(t);
  EXPECT_NE(s.find("empty (0 rows x 0 cols)"), std::string::npos);
}

TEST(FdRobustnessTest, WideNullPaddedProblem) {
  // 40-column universal schema, tuples touching 2 columns each.
  std::vector<std::string> names;
  for (int c = 0; c < 40; ++c) names.push_back("c" + std::to_string(c));
  FdProblem problem(40, names);
  for (uint32_t t = 0; t < 30; ++t) {
    std::vector<Value> vals(40);
    vals[t % 40] = Value::String("k" + std::to_string(t % 5));
    vals[(t + 7) % 40] = Value::Int(t);
    ASSERT_TRUE(problem.AddTuple(t % 3, std::move(vals)).ok());
  }
  auto result = FullDisjunction().Run(&problem);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->tuples.size(), 0u);
  EXPECT_LE(result->tuples.size(), 30u);
}

}  // namespace
}  // namespace lakefuzz
