// Tests for src/table: Value, Schema, Table, CSV, printer.
#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/print.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- Value

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedConstructorsAndAccessors) {
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, ParseInfersTypes) {
  EXPECT_EQ(Value::Parse("").type(), ValueType::kNull);
  EXPECT_EQ(Value::Parse("123").type(), ValueType::kInt64);
  EXPECT_EQ(Value::Parse("-42").AsInt(), -42);
  EXPECT_EQ(Value::Parse("+7").AsInt(), 7);
  EXPECT_EQ(Value::Parse("3.14").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("1e3").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("true").type(), ValueType::kBool);
  EXPECT_EQ(Value::Parse("FALSE").type(), ValueType::kBool);
  EXPECT_EQ(Value::Parse("Berlin").type(), ValueType::kString);
}

TEST(ValueTest, ParseEdgeCasesStayStrings) {
  EXPECT_EQ(Value::Parse("1.2.3").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse("12abc").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse("-").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse("tt0000001").type(), ValueType::kString);
  // Overflowing int64 literal must not silently lose digits.
  EXPECT_EQ(Value::Parse("99999999999999999999999").type(),
            ValueType::kString);
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::String("1"), Value::Int(1));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::String(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Double(1.0).Hash());
  // -0.0 and +0.0 compare equal as doubles; hashes must agree.
  EXPECT_EQ(Value::Double(0.0), Value::Double(-0.0));
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());
}

TEST(ValueTest, ToStringRoundTripsThroughParse) {
  for (const Value& v :
       {Value::Int(123456789), Value::Double(0.1), Value::Double(1e-9),
        Value::Bool(false), Value::String("plain")}) {
    EXPECT_EQ(Value::Parse(v.ToString()), v) << v.ToString();
  }
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> vals{Value::Null(), Value::String("a"),
                          Value::String("b"), Value::Int(1), Value::Int(2),
                          Value::Double(0.5), Value::Bool(false),
                          Value::Bool(true)};
  std::sort(vals.begin(), vals.end());
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    EXPECT_FALSE(vals[i + 1] < vals[i]);
  }
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, FromNamesAndLookup) {
  Schema s = Schema::FromNames({"a", "b", "c"});
  EXPECT_EQ(s.NumFields(), 3u);
  EXPECT_EQ(s.FieldIndex("b"), 1u);
  EXPECT_EQ(s.FieldIndex("zz"), Schema::kNotFound);
  EXPECT_TRUE(s.HasField("c"));
  EXPECT_FALSE(s.HasField("d"));
}

TEST(SchemaTest, DuplicateNamesResolveToFirst) {
  Schema s = Schema::FromNames({"x", "x"});
  EXPECT_EQ(s.FieldIndex("x"), 0u);
}

TEST(SchemaTest, AddFieldReturnsIndex) {
  Schema s;
  EXPECT_EQ(s.AddField(Field{"n", ValueType::kInt64}), 0u);
  EXPECT_EQ(s.AddField(Field{"m", ValueType::kNull}), 1u);
  EXPECT_EQ(s.field(0).type, ValueType::kInt64);
}

TEST(SchemaTest, FieldNamesOrder) {
  Schema s = Schema::FromNames({"q", "w", "e"});
  EXPECT_EQ(s.FieldNames(), (std::vector<std::string>{"q", "w", "e"}));
}

// ---------------------------------------------------------------- Table

Table MakeCityTable() {
  Table t("cities", Schema::FromNames({"City", "Country"}));
  EXPECT_TRUE(t.AppendRow({Value::String("Berlin"), Value::String("DE")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::String("Paris"), Value::Null()}).ok());
  EXPECT_TRUE(t.AppendRow({Value::String("Berlin"), Value::String("DE")}).ok());
  return t;
}

TEST(TableTest, AppendAndAccess) {
  Table t = MakeCityTable();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_EQ(t.At(0, 0), Value::String("Berlin"));
  EXPECT_TRUE(t.At(1, 1).is_null());
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table t("t", Schema::FromNames({"a", "b"}));
  Status s = t.AppendRow({Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableTest, SetOverwritesCell) {
  Table t = MakeCityTable();
  t.Set(1, 1, Value::String("FR"));
  EXPECT_EQ(t.At(1, 1), Value::String("FR"));
}

TEST(TableTest, RowMaterializes) {
  Table t = MakeCityTable();
  auto row = t.Row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], Value::String("Berlin"));
  EXPECT_EQ(row[1], Value::String("DE"));
}

TEST(TableTest, DistinctNonNullFirstAppearanceOrder) {
  Table t = MakeCityTable();
  auto d0 = t.DistinctNonNull(0);
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(d0[0], Value::String("Berlin"));
  EXPECT_EQ(d0[1], Value::String("Paris"));
  EXPECT_EQ(t.DistinctNonNull(1).size(), 1u);  // null excluded
}

TEST(TableTest, NullCount) {
  Table t = MakeCityTable();
  EXPECT_EQ(t.NullCount(0), 0u);
  EXPECT_EQ(t.NullCount(1), 1u);
}

TEST(TableTest, FromRowsBuilds) {
  auto r = Table::FromRows("x", {"a"}, {{Value::Int(1)}, {Value::Int(2)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST(TableTest, FromRowsPropagatesArityError) {
  auto r = Table::FromRows("x", {"a", "b"}, {{Value::Int(1)}});
  EXPECT_FALSE(r.ok());
}

TEST(TableTest, SelectRowsProjectsInOrder) {
  Table t = MakeCityTable();
  Table s = t.SelectRows({2, 0});
  ASSERT_EQ(s.NumRows(), 2u);
  EXPECT_EQ(s.At(0, 0), Value::String("Berlin"));
  EXPECT_EQ(s.At(1, 0), Value::String("Berlin"));
  EXPECT_EQ(s.name(), t.name());
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, BasicParseWithHeader) {
  auto r = ReadCsv("a,b\n1,x\n2,y\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->schema().FieldNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r->At(0, 0), Value::Int(1));
  EXPECT_EQ(r->At(1, 1), Value::String("y"));
}

TEST(CsvTest, NoHeaderSynthesizesNames) {
  CsvOptions opts;
  opts.has_header = false;
  auto r = ReadCsv("1,2\n3,4\n", "t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().FieldNames(), (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndQuotes) {
  auto r = ReadCsv("a,b\n\"x,y\",\"He said \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 0), Value::String("x,y"));
  EXPECT_EQ(r->At(0, 1), Value::String("He said \"hi\""));
}

TEST(CsvTest, EmbeddedNewlineInsideQuotes) {
  auto r = ReadCsv("a\n\"line1\nline2\"\n", "t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->At(0, 0), Value::String("line1\nline2"));
}

TEST(CsvTest, CrLfLineEndings) {
  auto r = ReadCsv("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->At(0, 1), Value::Int(2));
}

TEST(CsvTest, EmptyUnquotedFieldIsNullQuotedIsNull) {
  auto r = ReadCsv("a,b\n,x\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->At(0, 0).is_null());
}

TEST(CsvTest, TrailingNewlineDoesNotAddRow) {
  auto r1 = ReadCsv("a\n1\n", "t");
  auto r2 = ReadCsv("a\n1", "t");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->NumRows(), r2->NumRows());
}

TEST(CsvTest, InconsistentFieldCountFails) {
  auto r = ReadCsv("a,b\n1\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto r = ReadCsv("a\n\"oops\n", "t");
  ASSERT_FALSE(r.ok());
}

TEST(CsvTest, TypeInferenceCanBeDisabled) {
  CsvOptions opts;
  opts.infer_types = false;
  auto r = ReadCsv("a\n123\n", "t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 0), Value::String("123"));
}

TEST(CsvTest, QuotedNumbersStayStrings) {
  auto r = ReadCsv("a\n\"007\"\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 0), Value::String("007"));
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  auto r = ReadCsv("a;b\n1;2\n", "t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 1), Value::Int(2));
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t("rt", Schema::FromNames({"s", "n", "d"}));
  ASSERT_TRUE(t.AppendRow({Value::String("a,\"b\"\nc"), Value::Int(-3),
                           Value::Double(2.5)})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(0), Value::Null()}).ok());
  auto r = ReadCsv(WriteCsv(t), "rt");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), t.NumRows());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      EXPECT_EQ(r->At(i, c), t.At(i, c)) << "cell " << i << "," << c;
    }
  }
}

TEST(CsvTest, WritePreservesWhitespaceViaQuoting) {
  Table t("ws", Schema::FromNames({"s"}));
  ASSERT_TRUE(t.AppendRow({Value::String("  padded  ")}).ok());
  auto r = ReadCsv(WriteCsv(t), "ws");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 0), Value::String("  padded  "));
}

TEST(CsvTest, FileRoundTrip) {
  Table t = MakeCityTable();
  std::string path = testing::TempDir() + "/lakefuzz_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), t.NumRows());
  EXPECT_EQ(r->name(), "lakefuzz_csv_test");
}

TEST(CsvTest, MissingFileIsIoError) {
  auto r = ReadCsvFile("/nonexistent/nope.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, EmptyInputYieldsEmptyTable) {
  auto r = ReadCsv("", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
  EXPECT_EQ(r->NumColumns(), 0u);
}

// ---------------------------------------------------------------- Print

TEST(PrintTest, RendersHeaderAndNullSymbol) {
  Table t = MakeCityTable();
  std::string s = RenderTable(t);
  EXPECT_NE(s.find("City"), std::string::npos);
  EXPECT_NE(s.find("⊥"), std::string::npos);
  EXPECT_NE(s.find("cities (3 rows x 2 cols)"), std::string::npos);
}

TEST(PrintTest, ElidesRowsBeyondLimit) {
  Table t("big", Schema::FromNames({"n"}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i)}).ok());
  }
  PrintOptions opts;
  opts.max_rows = 3;
  std::string s = RenderTable(t, opts);
  EXPECT_NE(s.find("(7 more rows)"), std::string::npos);
}

TEST(PrintTest, ClipsWideCells) {
  Table t("wide", Schema::FromNames({"s"}));
  ASSERT_TRUE(t.AppendRow({Value::String(std::string(100, 'x'))}).ok());
  PrintOptions opts;
  opts.max_cell_width = 10;
  std::string s = RenderTable(t, opts);
  EXPECT_NE(s.find("…"), std::string::npos);
  EXPECT_EQ(s.find(std::string(50, 'x')), std::string::npos);
}

}  // namespace
}  // namespace lakefuzz
