// Tests for src/text: normalization, tokenization, distances, acronyms.
#include <gtest/gtest.h>

#include <string>

#include "text/acronym.h"
#include "text/distance.h"
#include "text/normalize.h"
#include "text/tokenize.h"
#include "util/rng.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- Normalize

TEST(NormalizeTest, DefaultPipeline) {
  EXPECT_EQ(Normalize("  New-Delhi,  INDIA  "), "newdelhi india");
  EXPECT_EQ(Normalize("Berlin"), "berlin");
  EXPECT_EQ(Normalize(""), "");
}

TEST(NormalizeTest, KeepPunctuation) {
  NormalizeOptions opts;
  opts.strip_punctuation = false;
  EXPECT_EQ(Normalize("U.S.", opts), "u.s.");
}

TEST(NormalizeTest, NoCaseFold) {
  NormalizeOptions opts;
  opts.case_fold = false;
  opts.strip_punctuation = false;
  EXPECT_EQ(Normalize("Ab C", opts), "Ab C");
}

TEST(NormalizeTest, CollapseWhitespaceOnly) {
  NormalizeOptions opts;
  opts.case_fold = false;
  opts.strip_punctuation = false;
  EXPECT_EQ(Normalize("a   b\t\tc", opts), "a b c");
}

TEST(NormalizeTest, IdentityPresetKeepsPunctuationFoldsCase) {
  EXPECT_EQ(NormalizeForIdentity("  Berlin  "), "berlin");
  EXPECT_EQ(NormalizeForIdentity("U.S."), "u.s.");
  EXPECT_NE(NormalizeForIdentity("U.S."), NormalizeForIdentity("US"));
}

TEST(NormalizeTest, Utf8BytesPassThrough) {
  EXPECT_EQ(Normalize("Zürich"), "zürich");
}

// ---------------------------------------------------------------- Tokenize

TEST(TokenizeTest, WordTokensSplitOnNonAlnum) {
  EXPECT_EQ(WordTokens("New-Delhi, 2021!"),
            (std::vector<std::string>{"New", "Delhi", "2021"}));
  EXPECT_TRUE(WordTokens("...").empty());
  EXPECT_TRUE(WordTokens("").empty());
}

TEST(TokenizeTest, CharNgramsUnpadded) {
  EXPECT_EQ(CharNgrams("abcd", 2, /*pad=*/false),
            (std::vector<std::string>{"ab", "bc", "cd"}));
}

TEST(TokenizeTest, CharNgramsPaddedFrameBoundaries) {
  auto grams = CharNgrams("ab", 3, /*pad=*/true);
  // framed: \1\1ab\1\1 (6 chars) → 4 grams of length 3
  EXPECT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams.front(), std::string("\x01\x01"
                                       "a"));
  EXPECT_EQ(grams.back(), std::string("b\x01\x01"));
}

TEST(TokenizeTest, ShortStringYieldsWhole) {
  auto grams = CharNgrams("ab", 5, /*pad=*/false);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_TRUE(CharNgrams("", 3, false).empty());
}

TEST(TokenizeTest, NgramRangeUnionsSizes) {
  auto grams = CharNgramRange("abc", 2, 3, /*pad=*/false);
  EXPECT_EQ(grams.size(), 2u + 1u);  // two bigrams + one trigram
}

// ---------------------------------------------------------------- Levenshtein

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("same", "same"), 0u);
  EXPECT_EQ(Levenshtein("Berlinn", "Berlin"), 1u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(Levenshtein("flaw", "lawn"), Levenshtein("lawn", "flaw"));
}

TEST(DamerauTest, TranspositionCostsOne) {
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1u);
  EXPECT_EQ(Levenshtein("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshtein("ca", "abc"), 3u);  // OSA variant
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  const char* samples[] = {"berlin", "brelin", "toronto", "tornoto", "a", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      EXPECT_LE(DamerauLevenshtein(a, b), Levenshtein(a, b))
          << a << " vs " << b;
    }
  }
}

TEST(NormalizedLevenshteinTest, UnitRangeAndIdentity) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "xyz"), 1.0);
  double d = NormalizedLevenshtein("Berlinn", "Berlin");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 0.2);
}

// ---------------------------------------------------------------- Jaro

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944, 0.001);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.767, 0.001);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jw = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_NEAR(jw, 0.961, 0.001);
  EXPECT_GE(jw, JaroSimilarity("MARTHA", "MARHTA"));
}

TEST(JaroWinklerTest, NoBoostBelowThreshold) {
  double jaro = JaroSimilarity("abcdef", "uvwxyz");
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcdef", "uvwxyz"), jaro);
}

TEST(JaroWinklerTest, TypoPairsScoreHigh) {
  EXPECT_GT(JaroWinklerSimilarity("Berlinn", "Berlin"), 0.9);
  EXPECT_LT(JaroWinklerSimilarity("Berlin", "Toronto"), 0.6);
}

// ---------------------------------------------------------------- Set sims

TEST(NgramJaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(NgramJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NgramJaccard("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NgramJaccard("abc", ""), 0.0);
  EXPECT_GT(NgramJaccard("Berlinn", "Berlin"), 0.4);
  EXPECT_LT(NgramJaccard("Berlin", "Madrid"), 0.1);
}

TEST(DiceBigramTest, MultisetSemantics) {
  EXPECT_DOUBLE_EQ(DiceBigram("aaaa", "aaaa"), 1.0);
  EXPECT_DOUBLE_EQ(DiceBigram("", ""), 1.0);
  EXPECT_DOUBLE_EQ(DiceBigram("ab", ""), 0.0);
  EXPECT_GT(DiceBigram("night", "nacht"), 0.2);
}

TEST(TokenJaccardTest, WordLevel) {
  EXPECT_DOUBLE_EQ(TokenJaccard("new delhi", "delhi new"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-9);
}

// ------------------------------------------------- distance factory (A3)

class StringDistanceProperties
    : public ::testing::TestWithParam<StringDistanceKind> {};

TEST_P(StringDistanceProperties, IdentityIsZero) {
  auto dist = MakeStringDistance(GetParam());
  EXPECT_NEAR(dist("Berlin", "Berlin"), 0.0, 1e-12);
  EXPECT_NEAR(dist("", ""), 0.0, 1e-12);
}

TEST_P(StringDistanceProperties, SymmetricAndUnitBounded) {
  auto dist = MakeStringDistance(GetParam());
  const char* samples[] = {"Berlin", "Berlinn", "Toronto", "CA",
                           "United States", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double d1 = dist(a, b);
      double d2 = dist(b, a);
      EXPECT_NEAR(d1, d2, 1e-12) << a << " / " << b;
      EXPECT_GE(d1, 0.0);
      EXPECT_LE(d1, 1.0);
    }
  }
}

TEST_P(StringDistanceProperties, TypoCloserThanUnrelated) {
  auto dist = MakeStringDistance(GetParam());
  if (GetParam() == StringDistanceKind::kTokenJaccard) {
    // Token-level similarity cannot see sub-token typos: both pairs are
    // maximally distant; it must merely not invert the order.
    EXPECT_LE(dist("Berlinn", "Berlin"), dist("Berlin", "Caracas"));
  } else {
    EXPECT_LT(dist("Berlinn", "Berlin"), dist("Berlin", "Caracas"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StringDistanceProperties,
    ::testing::Values(StringDistanceKind::kNormalizedLevenshtein,
                      StringDistanceKind::kJaroWinkler,
                      StringDistanceKind::kNgramJaccard,
                      StringDistanceKind::kTokenJaccard),
    [](const ::testing::TestParamInfo<StringDistanceKind>& info) {
      // gtest names must be alnum/underscore only.
      std::string name(StringDistanceKindToString(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(StringDistanceFactoryTest, RoundTripNames) {
  for (auto kind : {StringDistanceKind::kNormalizedLevenshtein,
                    StringDistanceKind::kJaroWinkler,
                    StringDistanceKind::kNgramJaccard,
                    StringDistanceKind::kTokenJaccard}) {
    auto parsed = StringDistanceKindFromString(StringDistanceKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(StringDistanceKindFromString("nope").ok());
}

// ---------------------------------------------------------------- Acronym

TEST(AcronymTest, Initials) {
  EXPECT_EQ(Initials("United States"), "us");
  EXPECT_EQ(Initials("New York City"), "nyc");
  EXPECT_EQ(Initials("single"), "s");
  EXPECT_EQ(Initials(""), "");
}

TEST(AcronymTest, IsAcronymOf) {
  EXPECT_TRUE(IsAcronymOf("US", "United States"));
  EXPECT_TRUE(IsAcronymOf("u.s.", "United States"));
  EXPECT_TRUE(IsAcronymOf("MIT", "Massachusetts Institute Technology"));
  EXPECT_FALSE(IsAcronymOf("US", "Uruguay"));        // single token phrase
  EXPECT_FALSE(IsAcronymOf("USA", "United States")); // length mismatch
  EXPECT_FALSE(IsAcronymOf("X", "X Y"));             // single-letter rejected
}

TEST(AcronymTest, IsAbbreviationOf) {
  EXPECT_TRUE(IsAbbreviationOf("Dept", "Department"));
  EXPECT_TRUE(IsAbbreviationOf("Dept.", "Department"));
  EXPECT_TRUE(IsAbbreviationOf("Mr", "Mister"));
  EXPECT_TRUE(IsAbbreviationOf("Inc", "Incorporated"));
  EXPECT_FALSE(IsAbbreviationOf("Department", "Dept"));  // wrong direction
  EXPECT_FALSE(IsAbbreviationOf("xyz", "Department"));
  EXPECT_FALSE(IsAbbreviationOf("D", "Department"));  // too short
}

TEST(AcronymTest, AffinitySymmetric) {
  EXPECT_DOUBLE_EQ(AcronymAffinity("US", "United States"), 1.0);
  EXPECT_DOUBLE_EQ(AcronymAffinity("United States", "US"), 1.0);
  EXPECT_DOUBLE_EQ(AcronymAffinity("Berlin", "Toronto"), 0.0);
}

// --------------------------------------------- Banded / bounded Levenshtein

TEST(LevenshteinBoundedTest, AgreesWithReferenceOnRandomPairs) {
  Rng rng(0xba4d);
  for (int i = 0; i < 2000; ++i) {
    std::string a = rng.AlphaString(rng.Uniform(18));
    std::string b = rng.AlphaString(rng.Uniform(18));
    // Bias half the pairs toward similarity so the in-band branch is hit.
    if (rng.Bernoulli(0.5)) {
      b = a;
      if (!b.empty()) b[rng.Uniform(b.size())] = 'z';
    }
    size_t reference = Levenshtein(a, b);
    for (size_t max_dist : {size_t{0}, size_t{1}, size_t{3}, size_t{20}}) {
      size_t banded = LevenshteinBounded(a, b, max_dist);
      if (reference <= max_dist) {
        EXPECT_EQ(banded, reference) << "a=" << a << " b=" << b
                                     << " max_dist=" << max_dist;
      } else {
        EXPECT_GT(banded, max_dist) << "a=" << a << " b=" << b
                                    << " max_dist=" << max_dist;
      }
    }
  }
}

TEST(LevenshteinBoundedTest, LowerBoundsNeverExceedTrueDistance) {
  Rng rng(0x10eb);
  for (int i = 0; i < 2000; ++i) {
    std::string a = rng.AlphaString(rng.Uniform(14));
    std::string b = rng.AlphaString(rng.Uniform(14));
    size_t reference = Levenshtein(a, b);
    EXPECT_LE(LevenshteinLengthLowerBound(a, b), reference);
    EXPECT_LE(LevenshteinBagLowerBound(a, b), reference);
  }
}

TEST(BoundedNormalizedLevenshteinTest, ExactBelowBudgetPrunedAbove) {
  Rng rng(0xb0d9);
  for (int i = 0; i < 2000; ++i) {
    std::string a = rng.AlphaString(1 + rng.Uniform(16));
    std::string b = rng.AlphaString(1 + rng.Uniform(16));
    if (rng.Bernoulli(0.5)) {
      b = a;
      b[rng.Uniform(b.size())] = 'z';
    }
    double reference = NormalizedLevenshtein(a, b);
    for (double budget : {0.2, 0.5, 0.8, 1.0}) {
      bool pruned = false;
      double d = BoundedNormalizedLevenshtein(a, b, budget, &pruned);
      if (reference < budget) {
        EXPECT_FALSE(pruned) << "a=" << a << " b=" << b;
        EXPECT_DOUBLE_EQ(d, reference);
      } else {
        // Either computed exactly or pruned to 1.0 — never *under* budget.
        EXPECT_GE(d, budget);
        if (pruned) EXPECT_DOUBLE_EQ(d, 1.0);
        if (!pruned) EXPECT_DOUBLE_EQ(d, reference);
      }
    }
  }
}

TEST(LevenshteinBoundedTest, HugeBudgetIsClampedNotOverflowed) {
  // SIZE_MAX as "no limit" must degrade to exact Levenshtein, not wrap
  // kPruned/band bounds around zero.
  EXPECT_EQ(LevenshteinBounded("abc", "xyz", SIZE_MAX), 3u);
  EXPECT_EQ(LevenshteinBounded("abc", "abc", SIZE_MAX), 0u);
  EXPECT_EQ(LevenshteinBounded("", "abc", SIZE_MAX), 3u);
}

TEST(BoundedNormalizedLevenshteinTest, EdgeCases) {
  bool pruned = true;
  EXPECT_DOUBLE_EQ(BoundedNormalizedLevenshtein("", "", 0.5, &pruned), 0.0);
  EXPECT_FALSE(pruned);
  EXPECT_DOUBLE_EQ(BoundedNormalizedLevenshtein("abc", "abc", 0.1, &pruned),
                   0.0);
  EXPECT_FALSE(pruned);
  // Wildly different lengths: the O(1) length bound must fire.
  EXPECT_DOUBLE_EQ(BoundedNormalizedLevenshtein(
                       "a", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", 0.2, &pruned),
                   1.0);
  EXPECT_TRUE(pruned);
  // Null pruned pointer is allowed.
  EXPECT_DOUBLE_EQ(BoundedNormalizedLevenshtein("abc", "abd", 0.9, nullptr),
                   NormalizedLevenshtein("abc", "abd"));
}

TEST(MakeBoundedStringDistanceTest, NonLevenshteinKindsNeverPrune) {
  auto fn = MakeBoundedStringDistance(StringDistanceKind::kJaroWinkler);
  auto plain = MakeStringDistance(StringDistanceKind::kJaroWinkler);
  bool pruned = true;
  EXPECT_DOUBLE_EQ(fn("Berlin", "Toronto", 0.1, &pruned),
                   plain("Berlin", "Toronto"));
  EXPECT_FALSE(pruned);
}

}  // namespace
}  // namespace lakefuzz
