// Tests for src/util: Status/Result, strings, hashing, RNG, flags, pool.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>

#include "util/flags.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsThenPropagates() {
  LAKEFUZZ_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> DoubleOrFail(Result<int> in) {
  LAKEFUZZ_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnOnSuccess) {
  Result<int> r = DoubleOrFail(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = DoubleOrFail(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Strings

TEST(StrTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StrTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StrTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StrTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(StrTest, CaseConversionLeavesUtf8Alone) {
  EXPECT_EQ(ToLower("Ça"), "Ça"[0] == 'C' ? "Ça" : ToLower("Ça"));
  // The two-byte UTF-8 sequence for 'Ç' must pass through unchanged.
  std::string s = "\xC3\x87x";
  EXPECT_EQ(ToLower(s), "\xC3\x87x");
}

TEST(StrTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StrTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Berlin", "bErLiN"));
  EXPECT_FALSE(EqualsIgnoreCase("Berlin", "Berlin "));
}

TEST(StrTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("none here", "xyz", "q"), "none here");
  EXPECT_EQ(ReplaceAll("abab", "ab", "ba"), "baba");
}

TEST(StrTest, WithThousandsSep) {
  EXPECT_EQ(WithThousandsSep(0), "0");
  EXPECT_EQ(WithThousandsSep(999), "999");
  EXPECT_EQ(WithThousandsSep(1000), "1,000");
  EXPECT_EQ(WithThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSep(-1234567), "-1,234,567");
}

// ---------------------------------------------------------------- Hashing

TEST(HashTest, Fnv1aIsDeterministicAndSeedSensitive) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc", 1), Fnv1a64("abc", 2));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t a = Mix64(0x1234);
  uint64_t b = Mix64(0x1235);
  int diff = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

TEST(HashTest, HashCombineOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, SaltedHashVariesWithSalt) {
  EXPECT_NE(SaltedHash("x", 1), SaltedHash("x", 2));
  EXPECT_EQ(SaltedHash("x", 7), SaltedHash("x", 7));
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(10);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[rng.Uniform(5)];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 400) << "value " << v;  // each ≈600 expected
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(12);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(14);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(15);
  size_t low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  // Rank 0-9 should absorb well over a uniform 10% share.
  EXPECT_GT(low, 1000u);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(16);
  size_t low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 2000.0, 0.1, 0.04);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleDistinctAndBounded) {
  Rng rng(18);
  auto s = rng.Sample(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  for (size_t i : s) EXPECT_LT(i, 20u);
  EXPECT_EQ(rng.Sample(3, 10).size(), 3u);  // k clamped to n
}

TEST(RngTest, PickWeightedRespectsWeights) {
  Rng rng(19);
  std::vector<double> w{0.0, 1.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.PickWeighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(20);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, AlphaStringLowercase) {
  Rng rng(21);
  std::string s = rng.AlphaString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--alpha=1", "--name=fd"};
  Flags f = Flags::Parse(3, argv);
  EXPECT_EQ(f.GetInt("alpha", 0), 1);
  EXPECT_EQ(f.GetString("name", ""), "fd");
}

TEST(FlagsTest, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--threshold", "0.7"};
  Flags f = Flags::Parse(3, argv);
  EXPECT_DOUBLE_EQ(f.GetDouble("threshold", 0), 0.7);
}

TEST(FlagsTest, BareSwitchIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags f = Flags::Parse(2, argv);
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, BoolParsesSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=YES", "--d=off"};
  Flags f = Flags::Parse(5, argv);
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f = Flags::Parse(1, argv);
  EXPECT_EQ(f.GetInt("missing", 42), 42);
  EXPECT_EQ(f.GetString("missing", "d"), "d");
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, PositionalCollected) {
  const char* argv[] = {"prog", "input.csv", "--k=1", "out.csv"};
  Flags f = Flags::Parse(4, argv);
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.csv", "out.csv"}));
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ManyTasksDrainBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

// ---------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch w;
  double t1 = w.ElapsedSeconds();
  double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.Restart();
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, LevelFilterRoundTrips) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LogInfo("suppressed");  // must not crash
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace lakefuzz
